"""NumPy backend for the array-state simulator (timestamp arenas).

Same semantics, state machine and results as
:func:`repro.sim.indexed.simulate_schedule_indexed` — this module keeps
the scalar engine's per-element hot path byte-for-byte and adds an
array tier on top:

* every channel owns a segment of two **preallocated int64 arenas**
  (channel-major, one for accept times, one for pop times): a streaming
  channel carries exactly ``out_vol(src)`` elements end to end, so the
  timestamp queues never grow or wrap — the arenas *are* the channel
  history.  The scalar state machine appends to plain python lists
  (list indexing is the fastest scalar storage CPython has); flush
  cursors copy each list's tail into its arena segment exactly once,
  on demand, so every timestamp pays one conversion total;
* **batched horizon advancement**: a task that can provably run ``L``
  consume steps (every input timestamp already produced, memory
  readiness resolved) or ``M`` emit steps (every backpressure pop
  already recorded) advances them as one max-plus prefix scan over
  arena slices —

      t_j = max(t_{j-1} + 1, X_j)   ==   t = max-accum(X - j) + j

  instead of one python iteration per element.  Run lengths are bounded
  by each task's production-rate ratio and by FIFO occupancy, so at the
  paper-default volume band (8..64) batches rarely engage and the
  engine tracks the scalar one; on rate-skewed graphs the same loops
  collapse into a few scans;
* pacing anchors are **peeled scalar**: the first paced element fixes
  ``ra``/``wa`` exactly like the scalar engine and only the anchored
  remainder is batched;
* ``channel_stats`` merges every channel's accept/pop sequences in one
  flat ``searchsorted`` + ``maximum.reduceat`` pass over the arenas
  (pops win ties, as in the scalar merge) instead of a python
  two-pointer walk per channel.

Exact-integer contract: every batched product (pacing numerators, run
bounds) is pre-checked against int64, and schedules whose timestamps
could leave int64 run on the scalar big-int engine instead (counted in
``core.kernel_fallbacks``).  Results are byte-identical to the scalar
engine by construction — the batches compute the same recurrences —
and the differential tests enforce it across policies, pacings and
undersized-FIFO deadlocks.
"""

from __future__ import annotations

from collections import deque
from typing import Literal

import numpy as np

from ..core.backend import count_fallback
from ..core.indexed import freeze
from ..core.node_types import NodeKind
from .engine import DeadlockError
from .indexed import simulate_schedule_indexed
from .result import BlockPolicy, SimulationResult

__all__ = ["simulate_schedule_numpy"]

_I64 = np.int64
_NEG = -(1 << 62)  #: neutral element for the max-plus scans
_C31 = 1 << 31
#: analysis-makespan ceiling for the int64 arenas: simulated horizons
#: track the analysis makespan (same steady-state pacing model), so a
#: generous margin below 2**63 keeps every timestamp representable
_HORIZON_SAFE = 1 << 48
#: minimum run length worth a batched scan — below this the scalar
#: per-element steps win (a scan costs a handful of small allocations)
_BATCH_MIN = 32
#: consecutive failed length probes before a task stops probing for
#: good: run lengths are bounded by FIFO occupancy, and capacities are
#: fixed, so a task that keeps coming up short is capacity-bound and
#: will stay that way — re-probing it every activation is pure loss
_PROBE_BUDGET = 16

#: task state-machine phases (same encoding as repro.sim.indexed)
_GATE, _LOOP, _EMIT, _DONE = 0, 1, 2, 3


def simulate_schedule_numpy(
    schedule,
    *,
    policy: BlockPolicy = "barrier",
    pacing: Literal["steady", "greedy"] = "steady",
    capacity_override: int | None = None,
    raise_on_deadlock: bool = False,
) -> SimulationResult:
    """Simulate ``schedule`` on the arena-backed numpy engine.

    Same signature and semantics as
    :func:`repro.sim.indexed.simulate_schedule_indexed`; the runner
    dispatches here when the ``numpy`` backend is selected.  Schedules
    whose timestamps could leave int64 (adversarial volumes) run on the
    scalar engine instead — counted in ``core.kernel_fallbacks`` under
    ``sim.overflow`` — so results are exact either way.
    """
    if schedule.makespan >= _HORIZON_SAFE:
        count_fallback("sim.overflow")
        return simulate_schedule_indexed(
            schedule, policy=policy, pacing=pacing,
            capacity_override=capacity_override,
            raise_on_deadlock=raise_on_deadlock,
        )
    try:
        return _simulate_numpy(
            schedule, policy=policy, pacing=pacing,
            capacity_override=capacity_override,
            raise_on_deadlock=raise_on_deadlock,
        )
    except OverflowError:
        # a timestamp outgrew the int64 arenas (the arena flush raises
        # before anything wraps); all state was call-local, so
        # re-running on the scalar big-int engine is exact
        count_fallback("sim.overflow")
        return simulate_schedule_indexed(
            schedule, policy=policy, pacing=pacing,
            capacity_override=capacity_override,
            raise_on_deadlock=raise_on_deadlock,
        )


def _simulate_numpy(
    schedule,
    *,
    policy: BlockPolicy,
    pacing: Literal["steady", "greedy"],
    capacity_override: int | None,
    raise_on_deadlock: bool,
) -> SimulationResult:
    ig = freeze(schedule.graph)
    n = ig.n
    names = ig.names
    comp = ig.comp
    kinds = ig.kinds
    in_vol, out_vol = ig.in_vol, ig.out_vol
    sp, sa = ig.succ_ptr, ig.succ_adj
    pp, pa = ig.pred_ptr, ig.pred_adj

    block_of = schedule.partition.block_of
    blk = [block_of[names[i]] if comp[i] else -1 for i in range(n)]
    comp_ids = [i for i in range(n) if comp[i]]

    # ---- channels for streaming edges (CSR successor order, which is
    # the reference runner's put order) --------------------------------
    buffer_sizes = schedule.buffer_sizes
    ch_src: list[int] = []
    ch_dst: list[int] = []
    ch_cap: list[int] = []
    out_ch: list[list[int]] = [[] for _ in range(n)]
    fifo_in: list[list[int]] = [[] for _ in range(n)]
    mem_in: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        cu = comp[u]
        bu = blk[u]
        for j in range(sp[u], sp[u + 1]):
            v = sa[j]
            if not comp[v]:
                continue
            if cu and bu == blk[v]:
                cap = (
                    capacity_override
                    if capacity_override is not None
                    else buffer_sizes.get((names[u], names[v]), 1)
                )
                if cap < 1:
                    raise ValueError("FIFO capacity must be at least 1")
                out_ch[u].append(len(ch_src))
                fifo_in[v].append(len(ch_src))
                ch_src.append(u)
                ch_dst.append(v)
                ch_cap.append(cap)
            else:
                mem_in[v].append(u)
    nch = len(ch_src)
    ch_arr: list[list[int]] = [[] for _ in range(nch)]  #: accept times
    ch_pop: list[list[int]] = [[] for _ in range(nch)]  #: pop times
    cons_wait = [False] * nch  #: consumer blocked on next element
    prod_wait = [False] * nch  #: producer blocked on next pop

    # ---- preallocated timestamp arenas --------------------------------
    # channel e moves exactly out_vol[src] elements (canonical volumes:
    # the consumer's in_vol matches), so accepts and pops each fit a
    # fixed channel-major segment.  The lists above stay authoritative
    # for the scalar state machine; `_flush_acc`/`_flush_pop` copy each
    # list's unseen tail into its segment so the batched scans and the
    # statistics pass read plain int64 slices
    ch_base = [0] * (nch + 1)
    for e in range(nch):
        ch_base[e + 1] = ch_base[e] + out_vol[ch_src[e]]
    total = ch_base[nch]
    acc_arena = np.empty(total, dtype=_I64)
    pop_arena = np.empty(total, dtype=_I64)
    acc_fl = [0] * nch  #: accepts already flushed into the arena
    pop_fl = [0] * nch

    def _flush_acc(e: int) -> None:
        f = acc_fl[e]
        arr = ch_arr[e]
        k = len(arr)
        if k > f:
            b0 = ch_base[e]
            acc_arena[b0 + f:b0 + k] = arr[f:] if f else arr
            acc_fl[e] = k

    def _flush_pop(e: int) -> None:
        f = pop_fl[e]
        pops = ch_pop[e]
        k = len(pops)
        if k > f:
            b0 = ch_base[e]
            pop_arena[b0 + f:b0 + k] = pops[f:] if f else pops
            pop_fl[e] = k

    # ---- memory readiness (identical to the scalar engine) ------------
    contrib: list[tuple[int, ...]] = [()] * n
    for i in ig.topo:
        if comp[i]:
            contrib[i] = (i,)
        elif kinds[i] is NodeKind.BUFFER:
            acc: list[int] = []
            seen: set[int] = set()
            for j in range(pp[i], pp[i + 1]):
                for t in contrib[pa[j]]:
                    if t not in seen:
                        seen.add(t)
                        acc.append(t)
            contrib[i] = tuple(acc)
    ready_t: list[int | None] = [None] * n  #: resolved readiness times

    # ---- block gating (identical to the scalar engine) ----------------
    num_blocks = schedule.num_blocks
    gate_block = [-1] * n
    gate_task = [-1] * n
    block_gate: list[int] | None = None
    if policy == "barrier":
        block_members: list[int] = [0] * num_blocks
        for i in comp_ids:
            gate_block[i] = blk[i]
            block_members[blk[i]] += 1
        block_gate = [-1] * num_blocks  #: fire time, -1 = not yet fired
        block_rem = list(block_members)
        block_max = [0] * num_blocks
        block_waiters: list[list[int]] = [[] for _ in range(num_blocks)]
        if num_blocks:
            block_gate[0] = 0
        for b in range(1, num_blocks):
            if block_members[b - 1] == 0:
                block_gate[b] = 0
    elif policy == "pe":
        pe_of = schedule.pe_of
        prev_on_pe: dict[int, int] = {}
        for i in sorted(comp_ids, key=lambda i: (blk[i], pe_of[names[i]])):
            pe = pe_of[names[i]]
            if pe in prev_on_pe:
                gate_task[i] = prev_on_pe[pe]
            prev_on_pe[pe] = i
    elif policy != "dataflow":
        raise ValueError(f"unknown block policy {policy!r}")

    # ---- pacing intervals ---------------------------------------------
    si_n = [0] * n
    si_d = [0] * n
    so_n = [0] * n
    so_d = [0] * n
    si, so = schedule.si, schedule.so
    for i in comp_ids:
        v = names[i]
        r = si.get(v)
        w = so.get(v)
        if pacing != "steady":  # greedy: free-run, memory reads stay paced
            w = None
            if fifo_in[i]:
                r = None
        if r is not None:
            si_n[i], si_d[i] = r.numerator, r.denominator
        if w is not None:
            so_n[i], so_d[i] = w.numerator, w.denominator

    # ---- batch eligibility (per-task constants) -----------------------
    # a consume run between two emits spans ceil(vol_i/vol_o) elements
    # (the whole input for sinks) and an emit run ceil(vol_o/vol_i), so
    # only rate-skewed tasks can ever reach ``_BATCH_MIN`` — everyone
    # else runs the scalar path with zero probe overhead.  Tasks whose
    # volumes or pacing numerators could overflow the batched int64
    # products stay scalar too (counted once, as ``sim.pacing``).
    pacing_fallback = False
    can_c = [False] * n
    can_e = [False] * n
    for i in comp_ids:
        vi, vo = in_vol[i], out_vol[i]
        if not (si_n[i] < _C31 and so_n[i] < _C31
                and vi < _C31 and vo < _C31):
            if not pacing_fallback:
                pacing_fallback = True
                count_fallback("sim.pacing")
            continue
        can_c[i] = vi >= (_BATCH_MIN * vo if vo else _BATCH_MIN)
        can_e[i] = vo >= (_BATCH_MIN * vi if vi else _BATCH_MIN)
    probe_c = [_PROBE_BUDGET] * n
    probe_e = [_PROBE_BUDGET] * n

    # ---- task state ----------------------------------------------------
    phase = [_GATE] * n
    cns = [0] * n  #: consumed
    prd = [0] * n  #: produced
    tau = [0] * n  #: task-local clock
    ra = [-1] * n  #: read anchor
    wa = [-1] * n  #: write anchor
    oi = [0] * n  #: output index of a suspended emit
    started = [-1] * n
    finish_t = [-1] * n
    why: list[tuple | None] = [None] * n
    comp_waiters: list[list[int]] = [[] for _ in range(n)]
    queued = [True] * n
    horizon = 0
    remaining = len(comp_ids)

    run_q = deque(comp_ids)

    def wake(i: int) -> None:
        if not queued[i] and phase[i] != _DONE:
            queued[i] = True
            run_q.append(i)

    def advance(i: int) -> None:
        """Run task ``i`` until it blocks on an unknown timestamp."""
        nonlocal horizon, remaining
        arrs, pops_, caps = ch_arr, ch_pop, ch_cap
        cwait, pwait = cons_wait, prod_wait
        ph = phase[i]
        t = tau[i]
        c = cns[i]
        p = prd[i]
        vol_i = in_vol[i]
        vol_o = out_vol[i]
        o = oi[i] if ph == _EMIT else 0

        if ph == _GATE:
            b = gate_block[i]
            if b >= 0:
                gt = block_gate[b]
                if gt < 0:
                    block_waiters[b].append(i)
                    why[i] = ("gate_block", b)
                    phase[i] = _GATE
                    return
                if gt > t:
                    t = gt
            else:
                g = gate_task[i]
                if g >= 0:
                    ft = finish_t[g]
                    if ft < 0:
                        comp_waiters[g].append(i)
                        why[i] = ("gate_task", g)
                        return
                    if ft > t:
                        t = ft
            ph = _LOOP

        fin = fifo_in[i]
        mem = mem_in[i]
        och = out_ch[i]
        rn, rd = si_n[i], si_d[i]
        wn, wd = so_n[i], so_d[i]
        # one failed length probe disables further batch tries this
        # activation: input availability (and consumer pops) cannot
        # grow while no other task runs, so re-probing every element
        # would be pure overhead
        try_batch = can_c[i]
        try_ebatch = can_e[i]

        while True:
            if ph == _LOOP:
                if c >= vol_i and p >= vol_o:
                    break  # the dataflow loop is complete
                need = -(-((p + 1) * vol_i) // vol_o) if p < vol_o else vol_i
                if c < need:
                    # -- batched consume run: only when scalar provably
                    # would neither suspend nor anchor — every input
                    # element already produced, memory readiness already
                    # resolved, the read anchor already fixed -----------
                    if (try_batch and need - c >= _BATCH_MIN
                            and (not rd or ra[i] >= 0)):
                        L = need - c
                        for e in fin:
                            a = len(arrs[e]) - c
                            if a < L:
                                L = a
                        mbase = 0
                        if L >= _BATCH_MIN:
                            for u in mem:
                                rt = ready_t[u]
                                if rt is None:
                                    L = 0  # scalar path resolves it;
                                    break  # a later try may then batch
                                if rt > mbase:
                                    mbase = rt
                        else:
                            try_batch = False  # availability-bound
                            pb = probe_c[i] - 1
                            probe_c[i] = pb
                            if not pb:
                                can_c[i] = False
                        if L >= _BATCH_MIN:
                            # t_j = max(t_{j-1} + 1, X_j) as a prefix scan
                            js = np.arange(L, dtype=_I64)
                            if fin:
                                e0 = fin[0]
                                _flush_acc(e0)
                                b0 = ch_base[e0] + c
                                X = acc_arena[b0:b0 + L].astype(
                                    _I64, copy=True)
                                for e in fin[1:]:
                                    _flush_acc(e)
                                    b1 = ch_base[e] + c
                                    np.maximum(
                                        X, acc_arena[b1:b1 + L], out=X)
                                if mbase:
                                    np.maximum(X, mbase, out=X)
                            else:
                                X = np.full(L, mbase, dtype=_I64)
                            if rd:
                                due = ra[i] + -(-((c + js) * rn) // rd)
                                np.maximum(X, due, out=X)
                            z = np.maximum.accumulate(X - js)
                            ts = np.maximum(z, t) + js
                            ts_l = ts.tolist()
                            for e in fin:
                                pops = pops_[e]
                                if pop_fl[e] == len(pops):
                                    # keep the arena mirror current so a
                                    # later flush skips these elements
                                    b1 = ch_base[e] + len(pops)
                                    pop_arena[b1:b1 + L] = ts
                                    pops.extend(ts_l)
                                    pop_fl[e] = len(pops)
                                else:
                                    pops.extend(ts_l)
                                if pwait[e]:
                                    pwait[e] = False
                                    w = ch_src[e]
                                    if not queued[w]:
                                        queued[w] = True
                                        run_q.append(w)
                            if started[i] < 0:
                                started[i] = ts_l[0]
                            probe_c[i] = _PROBE_BUDGET
                            c += L
                            t = ts_l[L - 1] + 1
                            if p < vol_o and c >= need:
                                ph = _EMIT
                                o = 0
                            continue

                    # -- scalar element (exact copy of the base engine) -
                    for e in fin:
                        arr = arrs[e]
                        if len(arr) <= c:  # not yet produced: suspend
                            cwait[e] = True
                            why[i] = ("avail",)
                            cns[i], prd[i], tau[i], phase[i] = c, p, t, _LOOP
                            if t > horizon:
                                horizon = t
                            return
                        a = arr[c]
                        if a > t:
                            t = a
                    for u in mem:
                        rt = ready_t[u]
                        if rt is None:
                            rt = 0
                            pend = -1
                            for tk in contrib[u]:
                                ft = finish_t[tk]
                                if ft < 0:
                                    pend = tk
                                    break
                                if ft > rt:
                                    rt = ft
                            if pend >= 0:  # producer still running
                                comp_waiters[pend].append(i)
                                why[i] = ("avail",)
                                cns[i], prd[i], tau[i], phase[i] = \
                                    c, p, t, _LOOP
                                if t > horizon:
                                    horizon = t
                                return
                            ready_t[u] = rt
                        if rt > t:
                            t = rt
                    if rd:  # read pacing: element c no earlier than due
                        anchor = ra[i]
                        if anchor < 0:
                            anchor = ra[i] = t
                        due = anchor + -(-(c * rn) // rd)
                        if due > t:
                            t = due
                    for e in fin:  # non-eager pop of one element each
                        pops_[e].append(t)
                        if pwait[e]:
                            pwait[e] = False
                            w = ch_src[e]
                            if not queued[w]:
                                queued[w] = True
                                run_q.append(w)
                    if started[i] < 0:
                        started[i] = t
                    c += 1
                    t += 1
                    if p < vol_o and c >= need:
                        ph = _EMIT
                        o = 0
                else:
                    if started[i] < 0:
                        started[i] = t
                    t += 1
                    ph = _EMIT
                    o = 0
            else:  # _EMIT: one element to every output, in order
                # -- batched emit run: consecutive emits c already
                # licenses, all of whose backpressure pops are known ----
                if (o == 0 and try_ebatch
                        and not (wd and wa[i] < 0)):  # anchor peeled
                    allowed = (vol_o - p if c >= vol_i
                               else (c * vol_o) // vol_i - p)
                    M = allowed
                    if M >= _BATCH_MIN:
                        for e in och:
                            m = len(pops_[e]) + caps[e] - len(arrs[e])
                            if m < M:
                                M = m
                        if M < _BATCH_MIN:
                            # backpressure-bound: the consumers' pops
                            # cannot arrive during this activation
                            try_ebatch = False
                            pb = probe_e[i] - 1
                            probe_e[i] = pb
                            if not pb:
                                can_e[i] = False
                    if M >= _BATCH_MIN:
                        nout = len(och)
                        qs = np.arange(M, dtype=_I64)
                        X = np.full((M, nout + 1), _NEG, dtype=_I64)
                        if wd:
                            X[:, 0] = wa[i] + -(-((p + qs) * wn) // wd)
                        for ei, e in enumerate(och):
                            # accept k waits for pop k - cap
                            k0 = len(arrs[e]) - caps[e]
                            lo = 0 if k0 >= 0 else -k0
                            if lo < M:
                                _flush_pop(e)
                                b1 = ch_base[e] + k0 + lo
                                X[lo:, ei + 1] = \
                                    pop_arena[b1:b1 + (M - lo)]
                        # +1 between consecutive emits (the _LOOP hop),
                        # none inside one emit's channel chain
                        Y = X - qs[:, None]
                        flat = np.maximum.accumulate(Y.ravel())
                        np.maximum(flat, t, out=flat)
                        vals = flat.reshape(M, nout + 1) + qs[:, None]
                        for ei, e in enumerate(och):
                            arr = arrs[e]
                            col = vals[:, ei + 1]
                            if acc_fl[e] == len(arr):
                                b1 = ch_base[e] + len(arr)
                                acc_arena[b1:b1 + M] = col
                                arr.extend(col.tolist())
                                acc_fl[e] = len(arr)
                            else:
                                arr.extend(col.tolist())
                            if cwait[e]:
                                cwait[e] = False
                                w = ch_dst[e]
                                if not queued[w]:
                                    queued[w] = True
                                    run_q.append(w)
                        probe_e[i] = _PROBE_BUDGET
                        p += M
                        t = int(vals[M - 1, nout])
                        ph = _LOOP
                        continue

                if wd:  # write pacing (idempotent on emit resume)
                    anchor = wa[i]
                    if anchor < 0:
                        anchor = wa[i] = t
                    due = anchor + -(-(p * wn) // wd)
                    if due > t:
                        t = due
                nout = len(och)
                while o < nout:
                    e = och[o]
                    arr = arrs[e]
                    k = len(arr)
                    cap = caps[e]
                    if k >= cap:
                        pops = pops_[e]
                        j = k - cap
                        if len(pops) <= j:  # space not freed: suspend
                            pwait[e] = True
                            why[i] = ("put", e)
                            oi[i] = o
                            cns[i], prd[i], tau[i], phase[i] = c, p, t, _EMIT
                            if t > horizon:
                                horizon = t
                            return
                        pt = pops[j]
                        if pt > t:
                            t = pt
                    arr.append(t)
                    if cwait[e]:
                        cwait[e] = False
                        w = ch_dst[e]
                        if not queued[w]:
                            queued[w] = True
                            run_q.append(w)
                    o += 1
                p += 1
                ph = _LOOP

        # ---- task finished ---------------------------------------------
        phase[i] = _DONE
        tau[i] = t
        finish_t[i] = t
        if t > horizon:
            horizon = t
        remaining -= 1
        waiters = comp_waiters[i]
        if waiters:
            comp_waiters[i] = []
            for w in waiters:
                wake(w)
        if block_gate is not None:
            b = blk[i]
            if t > block_max[b]:
                block_max[b] = t
            block_rem[b] -= 1
            if block_rem[b] == 0 and b + 1 < num_blocks:
                block_gate[b + 1] = block_max[b]
                bw = block_waiters[b + 1]
                if bw:
                    block_waiters[b + 1] = []
                    for w in bw:
                        wake(w)

    while run_q:
        i = run_q.popleft()
        queued[i] = False
        advance(i)

    finish = {names[i]: finish_t[i] for i in comp_ids if finish_t[i] >= 0}
    starts = {names[i]: started[i] for i in comp_ids if started[i] >= 0}

    def channel_stats() -> dict:
        """Max occupancy per channel, merged in one flat pass.

        Occupancy right after accept ``k`` is ``k + 1`` minus the pops
        at or before it (pops win ties, matching the scalar merge);
        the scalar merge never reports below zero.  The arenas are
        channel-major and nondecreasing per channel, so lifting every
        timestamp by ``channel_id * stride`` makes them globally sorted
        and one ``searchsorted`` + ``maximum.reduceat`` covers all
        channels at once.
        """
        mx = [0] * nch
        if nch:
            for e in range(nch):
                _flush_acc(e)
                _flush_pop(e)
            na_arr = np.asarray(acc_fl, dtype=_I64)
            np_arr = np.asarray(pop_fl, dtype=_I64)
            stride = horizon + 2
            if nch * stride < (1 << 62):
                a_base = np.concatenate(([0], np.cumsum(na_arr)))
                p_base = np.concatenate(([0], np.cumsum(np_arr)))
                tot_a = int(a_base[-1])
                if tot_a:
                    # gather the filled prefix of every channel segment
                    a_ch = np.repeat(np.arange(nch), na_arr)
                    p_ch = np.repeat(np.arange(nch), np_arr)
                    bases = np.asarray(ch_base[:-1], dtype=_I64)
                    A = acc_arena[
                        np.arange(tot_a) - a_base[a_ch] + bases[a_ch]
                    ] + a_ch * stride
                    P = pop_arena[
                        np.arange(int(p_base[-1])) - p_base[p_ch]
                        + bases[p_ch]
                    ] + p_ch * stride
                    done = np.searchsorted(P, A, side="right")
                    occ = (np.arange(tot_a) - a_base[a_ch] + 1
                           - (done - p_base[a_ch]))
                    filled = np.flatnonzero(na_arr)
                    peaks = np.maximum.reduceat(occ, a_base[filled])
                    for e, pk in zip(filled.tolist(), peaks.tolist()):
                        if pk > 0:
                            mx[e] = pk
            else:  # timestamps too large to lift: per-channel merges
                for e in range(nch):
                    na = acc_fl[e]
                    if na == 0:
                        continue
                    b0 = ch_base[e]
                    done = np.searchsorted(
                        pop_arena[b0:b0 + pop_fl[e]],
                        acc_arena[b0:b0 + na], side="right")
                    pk = int(
                        (np.arange(1, na + 1, dtype=_I64) - done).max())
                    if pk > 0:
                        mx[e] = pk
        return {
            (names[ch_src[e]], names[ch_dst[e]]): (ch_cap[e], mx[e])
            for e in range(nch)
        }

    if remaining:
        blocked = []
        for i in comp_ids:
            if finish_t[i] >= 0:
                continue
            reason = why[i]
            kind = reason[0] if reason else "?"
            if kind == "gate_block":
                ev = f"block{reason[1]}.start"
            elif kind == "gate_task":
                ev = f"{names[reason[1]]}.completion"
            elif kind == "put":
                e = reason[1]
                ev = f"{names[ch_src[e]]}->{names[ch_dst[e]]}.put"
            else:
                ev = "all_of"
            blocked.append(f"task:{names[i]} (on {ev})")
        error = DeadlockError(
            horizon,
            blocked,
            channels={
                f"{names[ch_src[e]]}->{names[ch_dst[e]]}": (
                    len(ch_arr[e]) - len(ch_pop[e]),
                    ch_cap[e],
                )
                for e in range(nch)
            },
        )
        if raise_on_deadlock:
            raise error
        return SimulationResult(
            makespan=error.time,
            finish_times=finish,
            deadlocked=True,
            blocked=error.blocked,
            channel_stats=channel_stats(),
            start_times=starts,
            deadlock_channels=error.channels,
        )
    return SimulationResult(
        makespan=horizon,
        finish_times=finish,
        channel_stats=channel_stats(),
        start_times=starts,
    )
