"""Durable artifacts of a simulated execution.

``repro schedule`` exports the *analytic* timeline (``--output`` /
``--trace``); this module gives ``repro simulate`` the same parity for
the *simulated* timeline: a versioned JSON summary and a Chrome
trace-event document in exactly the schema of
:func:`repro.core.serialize.schedule_to_chrome_trace` — one complete
("X") slice per task on its PE row, block-categorized — so analytic and
simulated traces load side by side in chrome://tracing / Perfetto.
"""

from __future__ import annotations

from ..core.serialize import FORMAT_VERSION, _name_to_json
from .result import SimulationResult

__all__ = ["simulation_to_dict", "simulation_to_chrome_trace"]


def simulation_to_dict(schedule, sim: SimulationResult) -> dict:
    """Versioned JSON summary of one simulated execution.

    Mirrors the ``streaming-schedule`` document layout: per-task rows
    carry the simulated ``start``/``finish`` next to the analytic
    ``st``/``lo``; channels report capacity and observed peak occupancy.
    Tasks that never ran (gated behind a deadlock) have ``null`` times.
    """
    times = schedule.times
    return {
        "format": "streaming-simulation",
        "version": FORMAT_VERSION,
        "num_pes": schedule.num_pes,
        "variant": schedule.partition.variant,
        "analytic_makespan": schedule.makespan,
        "makespan": sim.makespan,
        "deadlocked": sim.deadlocked,
        "blocked": list(sim.blocked),
        "tasks": [
            {
                "name": _name_to_json(v),
                "block": schedule.block_of(v),
                "pe": schedule.pe_of[v],
                "start": sim.start_times.get(v),
                "finish": sim.finish_times.get(v),
                "st": times[v].st,
                "lo": times[v].lo,
            }
            for v in schedule.graph.computational_nodes()
        ],
        "channels": [
            {
                "src": _name_to_json(u),
                "dst": _name_to_json(v),
                "capacity": cap,
                "max_occupancy": occ,
            }
            for (u, v), (cap, occ) in sim.channel_stats.items()
        ],
        # the FIFOs at capacity at deadlock time (empty on a clean run)
        "full_channels": [
            {"channel": name, "occupancy": occ, "capacity": cap}
            for name, (occ, cap) in sorted(sim.full_channels().items())
        ],
    }


def simulation_to_chrome_trace(schedule, sim: SimulationResult) -> list[dict]:
    """Chrome trace-event JSON of the simulated timeline.

    Same schema as the analytic
    :func:`~repro.core.serialize.schedule_to_chrome_trace`: one "X"
    slice per executed task on its PE row, categorized by block, with
    the analytic ``st``/``lo`` in ``args`` for visual comparison.  On a
    deadlock, tasks that started but never finished are emitted as
    slices ending at the deadlock instant with ``"deadlocked": true``.
    """
    events: list[dict] = []
    for v in schedule.graph.computational_nodes():
        start = sim.start_times.get(v)
        if start is None:
            continue  # never ran (e.g. gated behind the deadlock)
        finish = sim.finish_times.get(v)
        t = schedule.times[v]
        args = {"st": t.st, "lo": t.lo}
        if finish is None:
            finish = sim.makespan
            args["deadlocked"] = True
        else:
            args["finish"] = finish
        events.append(
            {
                "name": str(v),
                "cat": f"block{schedule.block_of(v)}",
                "ph": "X",
                "ts": start,
                "dur": max(1, finish - start),
                "pid": 0,
                "tid": schedule.pe_of[v],
                "args": args,
            }
        )
    return events
