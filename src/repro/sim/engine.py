"""A minimal process-based discrete-event simulation engine.

The paper's Appendix B validates schedules with ``simpy``; that package
is not available in this environment, so this module provides the small
subset of its semantics the validation needs, implemented from scratch:

* an :class:`Environment` with an event heap and integer time;
* :class:`Process` objects driving Python generators that ``yield``
  events (:meth:`Environment.timeout`, channel gets/puts, other events);
* :class:`Event` with callbacks and values — callbacks attached *after*
  an event has fired run immediately, so waiting on an already-completed
  process is safe;
* global deadlock detection: if the event heap drains while processes
  are still alive, the run is deadlocked and the blocked processes are
  reported (this is exactly the situation insufficient FIFO space
  creates, Figure 9).

The engine is deterministic: same inputs, same event order (ties broken
by insertion sequence).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

__all__ = ["Environment", "Event", "Process", "DeadlockError", "SimulationError"]


class SimulationError(RuntimeError):
    """Generic simulation failure (bad yield, double trigger, ...)."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    ``channels`` (when the raiser knows about them — both schedule
    simulation engines attach it) maps each streaming channel's name
    (``"u->v"``) to its ``(occupancy, capacity)`` at deadlock time, so
    an undersized-FIFO failure (Figure 9) is diagnosable straight from
    the exception: the full channels are the ones whose blocked
    producers close the cycle.
    """

    def __init__(
        self,
        time: int,
        blocked: list[str],
        channels: dict[str, tuple[int, int]] | None = None,
    ):
        self.time = time
        self.blocked = sorted(blocked)
        self.channels = dict(channels) if channels else {}
        preview = ", ".join(self.blocked[:8])
        more = (
            "" if len(self.blocked) <= 8 else f" (+{len(self.blocked) - 8} more)"
        )
        message = (
            f"deadlock at t={time}: {len(self.blocked)} blocked "
            f"process{'' if len(self.blocked) == 1 else 'es'}: {preview}{more}"
        )
        if self.channels:
            full = [n for n, (occ, cap) in self.channels.items() if occ >= cap]
            message += (
                f"; {len(full)}/{len(self.channels)} FIFOs full"
                + (f" ({', '.join(full[:4])}"
                   + ("…" if len(full) > 4 else "") + ")" if full else "")
            )
        super().__init__(message)

    def full_channels(self) -> dict[str, tuple[int, int]]:
        """The channels at capacity when the simulation deadlocked."""
        return {
            name: oc for name, oc in self.channels.items() if oc[0] >= oc[1]
        }


class Event:
    """A one-shot event; processes waiting on it resume when it fires.

    Lifecycle: created -> triggered (scheduled on the heap) ->
    processed (callbacks ran at its fire time).
    """

    __slots__ = ("env", "callbacks", "triggered", "processed", "value", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.processed = False
        self.value: Any = None
        self.name = name

    def trigger(self, value: Any = None, delay: int = 0) -> "Event":
        """Mark triggered; callbacks run ``delay`` units from now."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        self.env._schedule(self, delay)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Attach a callback; runs immediately if the event already fired."""
        if self.processed:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, triggered={self.triggered})"


class Process:
    """Wraps a generator; each yielded event suspends the process."""

    __slots__ = ("env", "gen", "name", "alive", "waiting_on", "completion")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any], name: str):
        self.env = env
        self.gen = gen
        self.name = name
        self.alive = True
        self.waiting_on: Event | None = None
        self.completion = Event(env, name=f"{name}.done")
        env._alive += 1
        env.event(f"{name}.start").trigger().add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self.waiting_on = None
        try:
            target = self.gen.send(event.value)
        except StopIteration as stop:
            self.alive = False
            self.env._alive -= 1
            self.completion.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self.waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation clock, event heap and process registry."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = itertools.count()
        self._alive = 0
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def timeout(self, delay: int, value: Any = None) -> Event:
        """An event that fires ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("negative delay")
        return Event(self, name=f"timeout({delay})").trigger(value, delay)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: Generator[Event, Any, Any], name: str = "proc") -> Process:
        proc = Process(self, gen, name)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event firing once every input event has fired."""
        events = list(events)
        combined = Event(self, name=name)
        state = {"remaining": len(events)}

        def on_done(_: Event) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                combined.trigger()

        if not events:
            combined.trigger()
            return combined
        for ev in events:
            ev.add_callback(on_done)
        return combined

    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Run to completion (or ``until``); returns the final time.

        A bounded run leaves every event past the horizon on the heap,
        so calling ``run`` again resumes the simulation losslessly.
        Raises :class:`DeadlockError` when the heap empties while
        processes remain blocked.
        """
        while self._heap:
            time, _, event = self._heap[0]
            if until is not None and time > until:
                # the event stays scheduled for a later resume
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            event.processed = True
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
        if self._alive > 0:
            blocked = [
                f"{p.name} (on {p.waiting_on.name if p.waiting_on else '?'})"
                for p in self._processes
                if p.alive
            ]
            raise DeadlockError(self.now, blocked)
        return self.now
