"""Array-state schedule simulation — the production validation engine.

The reference engine (:mod:`repro.sim.reference`) drives one Python
generator per task and one heap :class:`~repro.sim.engine.Event` per
element transfer; at fig13/ablation scale those allocations dominate
the whole validation campaign.  This module lowers a
:class:`~repro.core.scheduler.StreamingSchedule` over a frozen
:class:`~repro.core.indexed.IndexedGraph` into flat integer arrays —
per-task produced/consumed counters and anchors, CSR-ordered channel
lists, per-block gate state — and executes the identical dataflow
semantics as a *timestamp dataflow network*:

* every streaming channel keeps the (monotone) sequence of element
  **accept times** and **pop times** instead of live element objects;
  the bounded-FIFO law ``accept(k) = max(attempt, pop(k - capacity))``
  then prices backpressure exactly, with no pending-put event objects;
* every task is a small integer state machine replaying the canonical
  dataflow loop of :func:`repro.sim.reference._task_process` — same
  need/emit arithmetic, same streaming-interval pacing (integer
  ceilings over the interval's numerator/denominator), same gate
  semantics for all three block policies;
* a worklist advances each runnable task as far as its inputs' known
  timestamps allow — typically a whole blocking horizon of cycles per
  activation — and suspends it on the first *unknown* timestamp (an
  element not yet produced, a pop not yet performed, an unfired gate).
  Because each channel has a single producer and a single consumer and
  all enabling conditions are monotone, this maximum-progress order
  reaches the same unique fixed point as the reference engine's
  time-ordered heap: identical makespans, start/finish times, deadlock
  times and blocked sets (asserted by the golden differential tests).

A drained worklist with unfinished tasks is exactly the reference
engine's drained heap with live processes: a deadlock.  The blocked-on
strings are reconstructed in the reference engine's format
(``task:v (on u->w.put)`` etc.), and the raised
:class:`~repro.sim.engine.DeadlockError` carries every channel's
occupancy/capacity at deadlock time.

One knowingly weaker statistic: ``max_occupancy`` is reconstructed by
merging the accept/pop time sequences with pops winning ties, the
minimal occupancy profile consistent with the timestamps.  The
reference engine resolves same-instant accept/pop races by event
insertion order, so its reported maximum may exceed this by transient
same-cycle races; capacities, totals and deadlock occupancies agree
exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Literal

from ..core.indexed import freeze
from ..core.node_types import NodeKind
from .engine import DeadlockError
from .result import BlockPolicy, SimulationResult

__all__ = ["simulate_schedule_indexed"]

#: task state-machine phases
_GATE, _LOOP, _EMIT, _DONE = 0, 1, 2, 3


def simulate_schedule_indexed(
    schedule,
    *,
    policy: BlockPolicy = "barrier",
    pacing: Literal["steady", "greedy"] = "steady",
    capacity_override: int | None = None,
    raise_on_deadlock: bool = False,
) -> SimulationResult:
    """Simulate ``schedule`` on the array-state engine.

    Same signature and semantics as
    :func:`repro.sim.reference.simulate_schedule_reference`; see
    :func:`repro.sim.runner.simulate_schedule` for the dispatching
    front door.
    """
    ig = freeze(schedule.graph)
    n = ig.n
    names = ig.names
    comp = ig.comp
    kinds = ig.kinds
    in_vol, out_vol = ig.in_vol, ig.out_vol
    sp, sa = ig.succ_ptr, ig.succ_adj
    pp, pa = ig.pred_ptr, ig.pred_adj

    block_of = schedule.partition.block_of
    blk = [block_of[names[i]] if comp[i] else -1 for i in range(n)]
    comp_ids = [i for i in range(n) if comp[i]]

    # ---- channels for streaming edges (CSR successor order, which is
    # the reference runner's put order) --------------------------------
    buffer_sizes = schedule.buffer_sizes
    ch_src: list[int] = []
    ch_dst: list[int] = []
    ch_cap: list[int] = []
    out_ch: list[list[int]] = [[] for _ in range(n)]
    fifo_in: list[list[int]] = [[] for _ in range(n)]
    mem_in: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        cu = comp[u]
        bu = blk[u]
        for j in range(sp[u], sp[u + 1]):
            v = sa[j]
            if not comp[v]:
                continue
            if cu and bu == blk[v]:
                cap = (
                    capacity_override
                    if capacity_override is not None
                    else buffer_sizes.get((names[u], names[v]), 1)
                )
                if cap < 1:
                    raise ValueError("FIFO capacity must be at least 1")
                out_ch[u].append(len(ch_src))
                fifo_in[v].append(len(ch_src))
                ch_src.append(u)
                ch_dst.append(v)
                ch_cap.append(cap)
            else:
                mem_in[v].append(u)
    nch = len(ch_src)
    ch_arr: list[list[int]] = [[] for _ in range(nch)]  #: accept times
    ch_pop: list[list[int]] = [[] for _ in range(nch)]  #: pop times
    cons_wait = [False] * nch  #: consumer blocked on next element
    prod_wait = [False] * nch  #: producer blocked on next pop

    # ---- memory readiness: which computational tasks must complete
    # before node u's data sits in global memory (sources: none; comp
    # nodes: themselves; buffers: the transitive closure through their
    # predecessors — the all_of(".stored") chain of the reference) -----
    contrib: list[tuple[int, ...]] = [()] * n
    for i in ig.topo:
        if comp[i]:
            contrib[i] = (i,)
        elif kinds[i] is NodeKind.BUFFER:
            acc: list[int] = []
            seen: set[int] = set()
            for j in range(pp[i], pp[i + 1]):
                for t in contrib[pa[j]]:
                    if t not in seen:
                        seen.add(t)
                        acc.append(t)
            contrib[i] = tuple(acc)
    ready_t: list[int | None] = [None] * n  #: resolved readiness times

    # ---- block gating -------------------------------------------------
    num_blocks = schedule.num_blocks
    gate_block = [-1] * n
    gate_task = [-1] * n
    block_gate: list[int] | None = None
    if policy == "barrier":
        block_members: list[int] = [0] * num_blocks
        for i in comp_ids:
            gate_block[i] = blk[i]
            block_members[blk[i]] += 1
        block_gate = [-1] * num_blocks  #: fire time, -1 = not yet fired
        block_rem = list(block_members)
        block_max = [0] * num_blocks
        block_waiters: list[list[int]] = [[] for _ in range(num_blocks)]
        if num_blocks:
            block_gate[0] = 0
        for b in range(1, num_blocks):
            # an empty block's completion barrier fires at t=0 (the
            # reference's all_of over no events), releasing the next
            if block_members[b - 1] == 0:
                block_gate[b] = 0
    elif policy == "pe":
        pe_of = schedule.pe_of
        prev_on_pe: dict[int, int] = {}
        for i in sorted(comp_ids, key=lambda i: (blk[i], pe_of[names[i]])):
            pe = pe_of[names[i]]
            if pe in prev_on_pe:
                gate_task[i] = prev_on_pe[pe]
            prev_on_pe[pe] = i
    elif policy != "dataflow":
        raise ValueError(f"unknown block policy {policy!r}")

    # ---- pacing: streaming intervals as numerator/denominator pairs
    # (denominator 0 = free-running) ------------------------------------
    si_n = [0] * n
    si_d = [0] * n
    so_n = [0] * n
    so_d = [0] * n
    si, so = schedule.si, schedule.so
    for i in comp_ids:
        v = names[i]
        r = si.get(v)
        w = so.get(v)
        if pacing != "steady":  # greedy: free-run, memory reads stay paced
            w = None
            if fifo_in[i]:
                r = None
        if r is not None:
            si_n[i], si_d[i] = r.numerator, r.denominator
        if w is not None:
            so_n[i], so_d[i] = w.numerator, w.denominator

    # ---- task state ----------------------------------------------------
    phase = [_GATE] * n
    cns = [0] * n  #: consumed
    prd = [0] * n  #: produced
    tau = [0] * n  #: task-local clock
    ra = [-1] * n  #: read anchor
    wa = [-1] * n  #: write anchor
    oi = [0] * n  #: output index of a suspended emit
    started = [-1] * n
    finish_t = [-1] * n
    why: list[tuple | None] = [None] * n  #: blocking reason for diagnostics
    comp_waiters: list[list[int]] = [[] for _ in range(n)]
    queued = [True] * n
    horizon = 0  #: max realized event time == the engine clock at drain
    remaining = len(comp_ids)

    run_q = deque(comp_ids)

    def wake(i: int) -> None:
        if not queued[i] and phase[i] != _DONE:
            queued[i] = True
            run_q.append(i)

    def advance(i: int) -> None:
        """Run task ``i`` until it blocks on an unknown timestamp."""
        nonlocal horizon, remaining
        # closure cells -> locals: these are touched every cycle
        arrs, pops_, caps = ch_arr, ch_pop, ch_cap
        cwait, pwait = cons_wait, prod_wait
        ph = phase[i]
        t = tau[i]
        c = cns[i]
        p = prd[i]
        vol_i = in_vol[i]
        vol_o = out_vol[i]
        o = oi[i] if ph == _EMIT else 0

        if ph == _GATE:
            b = gate_block[i]
            if b >= 0:
                gt = block_gate[b]
                if gt < 0:
                    block_waiters[b].append(i)
                    why[i] = ("gate_block", b)
                    phase[i] = _GATE
                    return
                if gt > t:
                    t = gt
            else:
                g = gate_task[i]
                if g >= 0:
                    ft = finish_t[g]
                    if ft < 0:
                        comp_waiters[g].append(i)
                        why[i] = ("gate_task", g)
                        return
                    if ft > t:
                        t = ft
            ph = _LOOP

        fin = fifo_in[i]
        mem = mem_in[i]
        och = out_ch[i]
        rn, rd = si_n[i], si_d[i]
        wn, wd = so_n[i], so_d[i]

        while True:
            if ph == _LOOP:
                if c >= vol_i and p >= vol_o:
                    break  # the dataflow loop is complete
                need = -(-((p + 1) * vol_i) // vol_o) if p < vol_o else vol_i
                if c < need:
                    # -- wait until every input holds element c ---------
                    for e in fin:
                        arr = arrs[e]
                        if len(arr) <= c:  # not yet produced: suspend
                            cwait[e] = True
                            why[i] = ("avail",)
                            cns[i], prd[i], tau[i], phase[i] = c, p, t, _LOOP
                            if t > horizon:
                                horizon = t
                            return
                        a = arr[c]
                        if a > t:
                            t = a
                    for u in mem:
                        rt = ready_t[u]
                        if rt is None:
                            rt = 0
                            pend = -1
                            for tk in contrib[u]:
                                ft = finish_t[tk]
                                if ft < 0:
                                    pend = tk
                                    break
                                if ft > rt:
                                    rt = ft
                            if pend >= 0:  # producer still running
                                comp_waiters[pend].append(i)
                                why[i] = ("avail",)
                                cns[i], prd[i], tau[i], phase[i] = c, p, t, _LOOP
                                if t > horizon:
                                    horizon = t
                                return
                            ready_t[u] = rt
                        if rt > t:
                            t = rt
                    if rd:  # read pacing: element c no earlier than due
                        anchor = ra[i]
                        if anchor < 0:
                            anchor = ra[i] = t
                        due = anchor + -(-(c * rn) // rd)
                        if due > t:
                            t = due
                    for e in fin:  # non-eager pop of one element each
                        pops_[e].append(t)
                        if pwait[e]:
                            pwait[e] = False
                            w = ch_src[e]
                            if not queued[w]:
                                queued[w] = True
                                run_q.append(w)
                    if started[i] < 0:
                        started[i] = t
                    c += 1
                    t += 1
                    if p < vol_o and c >= need:
                        ph = _EMIT
                        o = 0
                else:
                    if started[i] < 0:
                        started[i] = t
                    t += 1
                    ph = _EMIT
                    o = 0
            else:  # _EMIT: one element to every output, in order
                if wd:  # write pacing (idempotent on emit resume)
                    anchor = wa[i]
                    if anchor < 0:
                        anchor = wa[i] = t
                    due = anchor + -(-(p * wn) // wd)
                    if due > t:
                        t = due
                nout = len(och)
                while o < nout:
                    e = och[o]
                    arr = arrs[e]
                    k = len(arr)
                    cap = caps[e]
                    if k >= cap:
                        pops = pops_[e]
                        j = k - cap
                        if len(pops) <= j:  # space not freed yet: suspend
                            pwait[e] = True
                            why[i] = ("put", e)
                            oi[i] = o
                            cns[i], prd[i], tau[i], phase[i] = c, p, t, _EMIT
                            if t > horizon:
                                horizon = t
                            return
                        pt = pops[j]
                        if pt > t:
                            t = pt
                    arr.append(t)
                    if cwait[e]:
                        cwait[e] = False
                        w = ch_dst[e]
                        if not queued[w]:
                            queued[w] = True
                            run_q.append(w)
                    o += 1
                p += 1
                ph = _LOOP

        # ---- task finished ---------------------------------------------
        phase[i] = _DONE
        tau[i] = t
        finish_t[i] = t
        if t > horizon:
            horizon = t
        remaining -= 1
        waiters = comp_waiters[i]
        if waiters:
            comp_waiters[i] = []
            for w in waiters:
                wake(w)
        if block_gate is not None:
            b = blk[i]
            if t > block_max[b]:
                block_max[b] = t
            block_rem[b] -= 1
            if block_rem[b] == 0 and b + 1 < num_blocks:
                block_gate[b + 1] = block_max[b]
                bw = block_waiters[b + 1]
                if bw:
                    block_waiters[b + 1] = []
                    for w in bw:
                        wake(w)

    while run_q:
        i = run_q.popleft()
        queued[i] = False
        advance(i)

    finish = {names[i]: finish_t[i] for i in comp_ids if finish_t[i] >= 0}
    starts = {names[i]: started[i] for i in comp_ids if started[i] >= 0}

    def channel_stats() -> dict:
        out = {}
        for e in range(nch):
            occ = mx = ia = ip = 0
            arr, pops = ch_arr[e], ch_pop[e]
            na, npop = len(arr), len(pops)
            while ia < na:
                if ip < npop and pops[ip] <= arr[ia]:
                    occ -= 1
                    ip += 1
                else:
                    occ += 1
                    ia += 1
                    if occ > mx:
                        mx = occ
            out[(names[ch_src[e]], names[ch_dst[e]])] = (ch_cap[e], mx)
        return out

    if remaining:
        blocked = []
        for i in comp_ids:
            if finish_t[i] >= 0:
                continue
            reason = why[i]
            kind = reason[0] if reason else "?"
            if kind == "gate_block":
                ev = f"block{reason[1]}.start"
            elif kind == "gate_task":
                ev = f"{names[reason[1]]}.completion"
            elif kind == "put":
                e = reason[1]
                ev = f"{names[ch_src[e]]}->{names[ch_dst[e]]}.put"
            else:
                ev = "all_of"
            blocked.append(f"task:{names[i]} (on {ev})")
        error = DeadlockError(
            horizon,
            blocked,
            channels={
                f"{names[ch_src[e]]}->{names[ch_dst[e]]}": (
                    len(ch_arr[e]) - len(ch_pop[e]),
                    ch_cap[e],
                )
                for e in range(nch)
            },
        )
        if raise_on_deadlock:
            raise error
        return SimulationResult(
            makespan=error.time,
            finish_times=finish,
            deadlocked=True,
            blocked=error.blocked,
            channel_stats=channel_stats(),
            start_times=starts,
            deadlock_channels=error.channels,
        )
    return SimulationResult(
        makespan=horizon,
        finish_times=finish,
        channel_stats=channel_stats(),
        start_times=starts,
    )
