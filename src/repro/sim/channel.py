"""Bounded FIFO channels with blocking-after-service semantics.

Streaming edges are modeled as finite FIFOs (Section 6): a ``put`` blocks
while the channel is full; reads happen in two phases — wait until an
element is *available* (:meth:`FifoChannel.when_nonempty`), then
:meth:`FifoChannel.pop` it.  The two-phase protocol lets a multi-input
task wait until **all** of its inputs hold an element and only then
consume one from each: eagerly draining the fast input would free FIFO
space early and weaken the backpressure that the Section 6 buffer-space
formula reasons about (the Figure 9 example needs exactly 18 slots, which
assumes non-eager consumption).

Memory-backed (non-streaming) inputs are modeled by :class:`MemoryStream`:
the reader may pull elements freely once the producer's data is ready in
global memory — global memory has infinite size and cannot deadlock.

Each channel has a single consumer (a canonical edge is point-to-point),
which the two-phase protocol relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .engine import Environment, Event, SimulationError

__all__ = ["FifoChannel", "MemoryStream"]


class FifoChannel:
    """A finite FIFO between two streaming tasks.

    Statistics (``max_occupancy``, totals) support the validation
    experiments: observed occupancy never exceeds the configured
    capacity, and with the Section 6 sizing the execution completes.
    """

    __slots__ = (
        "env",
        "capacity",
        "name",
        "items",
        "_pending_puts",
        "_nonempty_waiter",
        "max_occupancy",
        "total_put",
        "total_popped",
    )

    def __init__(self, env: Environment, capacity: int, name: str = "fifo"):
        if capacity < 1:
            raise ValueError("FIFO capacity must be at least 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._pending_puts: deque[tuple[Event, Any]] = deque()
        self._nonempty_waiter: Event | None = None
        self.max_occupancy = 0
        self.total_put = 0
        self.total_popped = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put(self, item: Any = None) -> Event:
        """Write one element; the returned event fires once accepted."""
        ev = Event(self.env, name=f"{self.name}.put")
        if len(self.items) < self.capacity:
            self._accept(item)
            ev.trigger()
        else:
            self._pending_puts.append((ev, item))
        return ev

    def _accept(self, item: Any) -> None:
        self.total_put += 1
        self.items.append(item)
        self.max_occupancy = max(self.max_occupancy, len(self.items))
        if self._nonempty_waiter is not None:
            waiter, self._nonempty_waiter = self._nonempty_waiter, None
            waiter.trigger()

    # ------------------------------------------------------------------
    # consumer side (two-phase: availability, then pop)
    # ------------------------------------------------------------------
    def when_nonempty(self) -> Event:
        """Event firing when the channel holds at least one element."""
        ev = Event(self.env, name=f"{self.name}.avail")
        if self.items:
            ev.trigger()
        else:
            if self._nonempty_waiter is not None:
                raise SimulationError(
                    f"channel {self.name!r} has two concurrent consumers"
                )
            self._nonempty_waiter = ev
        return ev

    def pop(self) -> Any:
        """Consume one element (must be available)."""
        if not self.items:
            raise SimulationError(f"pop from empty channel {self.name!r}")
        value = self.items.popleft()
        self.total_popped += 1
        while self._pending_puts and len(self.items) < self.capacity:
            ev, item = self._pending_puts.popleft()
            self._accept(item)
            ev.trigger()
        return value

    @property
    def occupancy(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FifoChannel({self.name!r}, cap={self.capacity}, "
            f"occ={len(self.items)}, waiting_puts={len(self._pending_puts)})"
        )


class MemoryStream:
    """A read-only view of data sitting in global memory.

    ``ready_event`` fires when the producer has fully committed its data
    (``None`` means available from t=0: graph inputs, preloaded weights).
    After readiness every read succeeds instantly; the reader's own
    one-element-per-cycle loop provides the pacing.
    """

    __slots__ = ("env", "ready_event", "name", "total_popped")

    def __init__(self, env: Environment, ready_event: Event | None, name: str = "mem"):
        self.env = env
        self.ready_event = ready_event
        self.name = name
        self.total_popped = 0

    def when_nonempty(self) -> Event:
        ev = Event(self.env, name=f"{self.name}.avail")
        if self.ready_event is None or self.ready_event.processed:
            ev.trigger()
        else:
            self.ready_event.add_callback(lambda _: ev.trigger())
        return ev

    def pop(self) -> Any:
        self.total_popped += 1
        return None
