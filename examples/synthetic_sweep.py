"""Mini Figure 10/11 sweep on the paper's synthetic topologies.

Generates a small population of random-volume graphs per topology and
prints median speedups and Streaming SLRs for both streaming variants
and the non-streaming baseline across the PE sweep.

Run: ``python examples/synthetic_sweep.py [population]``
"""

import sys
from statistics import median

from repro import schedule_streaming, speedup, streaming_depth
from repro.baselines import schedule_nonstreaming
from repro.graphs import PAPER_SIZES, random_canonical_graph


def main(population: int = 15) -> None:
    sweeps = {"chain": (2, 4, 8), "fft": (32, 64, 128),
              "gaussian": (32, 64, 128), "cholesky": (32, 64, 128)}
    for topo, size in PAPER_SIZES.items():
        graphs = [random_canonical_graph(topo, size, seed=s) for s in range(population)]
        depths = [streaming_depth(g) for g in graphs]
        print(f"\n=== {topo} ({graphs[0].num_tasks()} tasks, {population} graphs) ===")
        print(f"{'#PEs':>5} {'STR-1':>7} {'STR-2':>7} {'NSTR':>7} "
              f"{'SSLR-1':>7} {'SSLR-2':>7}")
        for p in sweeps[topo]:
            spd = {"lts": [], "rlx": [], "nstr": []}
            sslr = {"lts": [], "rlx": []}
            for g, d in zip(graphs, depths):
                for variant in ("lts", "rlx"):
                    s = schedule_streaming(g, p, variant, size_buffers=False)
                    spd[variant].append(speedup(g, s.makespan))
                    sslr[variant].append(s.makespan / d)
                ns = schedule_nonstreaming(g, p)
                spd["nstr"].append(speedup(g, ns.makespan))
            print(f"{p:5d} {median(spd['lts']):7.2f} {median(spd['rlx']):7.2f} "
                  f"{median(spd['nstr']):7.2f} {median(sslr['lts']):7.3f} "
                  f"{median(sslr['rlx']):7.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
