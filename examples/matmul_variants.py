"""The three canonical MatMul implementations of Figure 3, compared.

Builds the inner-product (1), column-parallel (2) and K-split (3)
expansions for the same GEMM and reports tasks, streaming depth, and
the scheduled makespan on a fixed device — showing why the paper picks
the implementation that maximizes parallelism.

Run: ``python examples/matmul_variants.py``
"""

from repro import schedule_streaming, speedup, streaming_depth, total_work
from repro.ml import CanonicalModelBuilder


def build(variant: str, n: int = 16, k: int = 32, m: int = 32):
    b = CanonicalModelBuilder(f"mm-{variant}", max_parallel=64)
    a = b.input(n * k, label="A")
    w = b.weights(k * m, label="B")
    out = b.matmul(a, w, n, k, m, variant=variant)
    b.output(out, label="C")
    return b.finish()


def main() -> None:
    n, k, m = 16, 32, 32
    print(f"C[{n}x{m}] = A[{n}x{k}] @ B[{k}x{m}] on 64 PEs\n")
    print(f"{'variant':>8} {'nodes':>6} {'tasks':>6} {'T1':>8} "
          f"{'T_s_inf':>8} {'makespan':>9} {'speedup':>8}")
    for variant in ("inner", "cols", "ksplit"):
        g = build(variant, n, k, m)
        s = schedule_streaming(g, 64, "rlx", size_buffers=False)
        print(
            f"{variant:>8} {len(g):6d} {g.num_tasks():6d} "
            f"{total_work(g):8,d} {streaming_depth(g):8,d} "
            f"{s.makespan:9,d} {speedup(g, s.makespan):8.2f}"
        )
    print(
        "\n(1) inner: both operands buffered, a single dot-product task — "
        "no parallelism.\n(2) cols: one matrix-vector task per column "
        "block, A streams/replicates, C streams out interleaved.\n"
        "(3) ksplit: outer products along the reduction dimension merged "
        "by an element-wise sum tree — C streams out."
    )


if __name__ == "__main__":
    main()
