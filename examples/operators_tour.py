"""Tour of the Section 3.2 canonical operator expansions.

Builds the paper's example computations — outer product (Figure 2),
vector normalization (Figure 4, both variants) and softmax (Figure 5) —
and shows how buffering vs streaming choices change the execution time
and the FIFO space requirements.

Run: ``python examples/operators_tour.py``
"""

from repro import CanonicalGraph, schedule_streaming, streaming_depth
from repro.ml import CanonicalModelBuilder
from repro.sim import simulate_schedule


def outer_product(n: int, m: int, stream_u: bool) -> CanonicalGraph:
    """Figure 2: u (n elements) x v^T (m elements) -> n*m matrix.

    ``stream_u=True`` builds implementation (1): u streams through a
    1:m upsampler while v^T sits in a buffer read n times.  Otherwise
    both inputs are buffered (implementation (3)).
    """
    g = CanonicalGraph()
    g.add_source("u", n)
    g.add_buffer("Bv", m, n * m)  # v^T buffered, read n times
    if stream_u:
        g.add_task("U", n, n * m)  # upsampler replicating each u_i m times
        g.add_edge("u", "U")
        feeder = "U"
    else:
        g.add_buffer("Bu", n, n * m)
        g.add_edge("u", "Bu")
        feeder = "Bu"
    g.add_task("E", n * m, n * m, label="mul")
    g.add_edge(feeder, "E")
    g.add_edge("Bv", "E")
    g.add_sink("A", n * m)
    g.add_edge("E", "A")
    g.validate()
    return g


def main() -> None:
    print("=== Outer product (Figure 2), n=8, m=16 ===")
    for stream_u in (True, False):
        g = outer_product(8, 16, stream_u)
        label = "stream u (impl 1)" if stream_u else "buffer both (impl 3)"
        print(f"  {label:22s} T_s_inf = {streaming_depth(g):4d} cycles")

    print("\n=== Vector normalization (Figure 4), N=64 ===")
    for streaming in (False, True):
        b = CanonicalModelBuilder("norm")
        x = b.input(64)
        feed = b.ewise(x, op="produce")  # upstream computational producer
        y = b.normalize(feed, streaming=streaming)
        b.output(y)
        g = b.finish()
        s = schedule_streaming(g, 8)
        sim = simulate_schedule(s)
        fifo = max(s.buffer_sizes.values(), default=0)
        label = "streamed (impl 2)" if streaming else "buffered (impl 1)"
        print(f"  {label:22s} makespan = {s.makespan:4d}, largest FIFO = "
              f"{fifo:3d}, deadlock-free = {not sim.deadlocked}")

    print("\n=== Softmax (Figure 5), N=64 ===")
    b = CanonicalModelBuilder("softmax")
    y = b.softmax(b.input(64))
    b.output(y)
    g = b.finish()
    s = schedule_streaming(g, 8)
    print(f"  nodes: {len(g)} ({len(g.buffer_nodes())} buffers), "
          f"makespan = {s.makespan}, streaming depth = {streaming_depth(g)}")
    print("  the exponentials are computed once and partially streamed "
          "into both the\n  denominator reduction and the final division, "
          "as in the paper.")


if __name__ == "__main__":
    main()
