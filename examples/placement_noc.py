"""NoC-aware placement of a streaming schedule (future-work extension).

The paper's model assumes contention-free communication and defers
placement.  This example schedules an FFT task graph, places each
spatial block on a 2D mesh with the greedy centroid placer, and
compares the NoC traffic (volume-weighted hops, hottest link) against a
random placement.

Run: ``python examples/placement_noc.py``
"""

from repro import schedule_streaming
from repro.graphs import random_canonical_graph
from repro.placement import mesh_for, place_schedule, random_placement


def main() -> None:
    g = random_canonical_graph("fft", 32, seed=7)
    s = schedule_streaming(g, 64, "rlx")
    mesh = mesh_for(64)
    print(f"FFT graph: {g.num_tasks()} tasks, {len(s.streaming_edges())} "
          f"streaming edges, {s.num_blocks} blocks on an "
          f"{mesh.rows}x{mesh.cols} mesh\n")

    greedy = place_schedule(s, mesh)
    rnd = random_placement(s, mesh, seed=1)

    print(f"{'placement':>10} {'weighted hops':>14} {'max link load':>14}")
    for name, placement in (("greedy", greedy), ("random", rnd)):
        print(f"{name:>10} {placement.weighted_hops():14,d} "
              f"{placement.max_link_load():14,d}")

    ratio = rnd.weighted_hops() / max(1, greedy.weighted_hops())
    print(f"\ngreedy placement carries {ratio:.1f}x less element-hops than "
          "random —\nlocality matters even though the scheduling model "
          "abstracts the NoC away.")


if __name__ == "__main__":
    main()
