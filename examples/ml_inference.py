"""Schedule a transformer encoder layer on a dataflow device (Table 2).

Builds the canonical task graph of one encoder layer (multi-head
attention with Figure 5 softmax expansions, Figure 3 MatMul expansions,
layer norms and the feed-forward block), then compares the streaming
scheduler against the non-streaming baseline across PE counts.

Run: ``python examples/ml_inference.py [--full]``
"""

import sys
import time

from repro import schedule_streaming, speedup
from repro.baselines import schedule_nonstreaming
from repro.ml import build_transformer_encoder


def main(full: bool = False) -> None:
    if full:
        graph = build_transformer_encoder(seq_len=128, max_parallel=128)
    else:
        graph = build_transformer_encoder(
            seq_len=32, d_model=128, num_heads=4, d_ff=512, max_parallel=64
        )
    print(
        f"encoder graph: {len(graph)} nodes "
        f"({graph.num_tasks()} tasks, {len(graph.buffer_nodes())} buffers), "
        f"T1 = {graph.total_work():,} cycles"
    )
    print(f"{'#PEs':>6} {'STR-SCH':>9} {'NSTR-SCH':>9} {'gain':>6} {'blocks':>7}")
    for num_pes in (64, 128, 256, 512):
        t0 = time.perf_counter()
        s = schedule_streaming(graph, num_pes, "lts", size_buffers=False)
        ns = schedule_nonstreaming(graph, num_pes)
        dt = time.perf_counter() - t0
        print(
            f"{num_pes:6d} {speedup(graph, s.makespan):9.1f} "
            f"{speedup(graph, ns.makespan):9.1f} "
            f"{ns.makespan / s.makespan:6.2f} {s.num_blocks:7d}   ({dt:.1f}s)"
        )
    print(
        "\nstreaming pipelines the projection/attention/FFN chains inside "
        "each spatial block;\nthe buffered baseline must wait for every "
        "producer to finish before its consumer starts."
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv)
