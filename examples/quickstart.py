"""Quickstart: build a canonical task graph, schedule it, validate it.

A five-task pipeline mixing the three computational node kinds is
scheduled on 3 PEs with both partitioning variants, the FIFO buffer
sizes are computed, and the schedule is executed cycle-accurately by
the discrete-event simulator.

Run: ``python examples/quickstart.py``
"""

from repro import (
    CanonicalGraph,
    schedule_streaming,
    speedup,
    streaming_depth,
    summarize_schedule,
)
from repro.sim import simulate_schedule


def build_pipeline() -> CanonicalGraph:
    """source -> elementwise -> downsampler -> upsampler -> join."""
    g = CanonicalGraph()
    g.add_task("load", 64, 64, label="load")          # element-wise
    g.add_task("filter", 64, 8, label="reduce")       # 8:1 downsampler
    g.add_task("expand", 8, 64, label="broadcast")    # 1:8 upsampler
    g.add_task("combine", 64, 64, label="combine")    # element-wise join
    g.add_edge("load", "filter")
    g.add_edge("filter", "expand")
    g.add_edge("expand", "combine")
    g.add_edge("load", "combine")                     # shortcut branch
    g.validate()
    return g


def main() -> None:
    g = build_pipeline()
    print(f"graph: {len(g)} nodes, T1 = {g.total_work()} cycles, "
          f"streaming depth = {streaming_depth(g)} cycles\n")

    for variant in ("lts", "rlx"):
        sched = schedule_streaming(g, num_pes=3, variant=variant)
        sched.validate()
        print(f"=== SB-{variant.upper()} on 3 PEs ===")
        print(f"blocks: {sched.partition.blocks}")
        for v in g.topological_order():
            t = sched.times[v]
            print(f"  {v:8s} block {sched.block_of(v)}  "
                  f"ST={t.st:3d}  FO={t.fo:3d}  LO={t.lo:3d}")
        print(f"FIFO sizes: { {f'{u}->{v}': c for (u, v), c in sched.buffer_sizes.items()} }")
        print(f"makespan = {sched.makespan}, "
              f"speedup = {speedup(g, sched.makespan):.2f}x")

        sim = simulate_schedule(sched)
        assert not sim.deadlocked
        print(f"simulated makespan = {sim.makespan} "
              f"(error {100 * sim.relative_error(sched.makespan):+.1f}%)")
        print(f"summary: {summarize_schedule(sched)}\n")


if __name__ == "__main__":
    main()
