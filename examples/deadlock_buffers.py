"""Reproduces the Figure 9 deadlock scenarios and Section 6 sizing.

Both task graphs of Figure 9 are scheduled, the FIFO capacities are
computed (18 for the shortcut channel of graph 1, 32 for the (4, 5)
channel of graph 2 — exactly the paper's numbers) and the execution is
simulated three ways: with the computed sizes (completes, matching the
analytic makespan), with minimal one-slot FIFOs (deadlocks), and with
one slot less than computed (pipeline bubble).

Run: ``python examples/deadlock_buffers.py``
"""

from repro import CanonicalGraph, schedule_streaming
from repro.sim import simulate_schedule


def fig9_graph1() -> CanonicalGraph:
    g = CanonicalGraph()
    g.add_task(0, 32, 32)
    g.add_task(1, 32, 4)   # 8:1 downsampler — the slow path begins
    g.add_task(2, 4, 2)    # 2:1 downsampler
    g.add_task(3, 2, 32)   # 1:16 upsampler
    g.add_task(4, 32, 32)  # join of the slow and fast paths
    for e in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
        g.add_edge(*e)
    return g


def fig9_graph2() -> CanonicalGraph:
    g = CanonicalGraph()
    g.add_task(0, 32, 32)
    g.add_task(1, 32, 1)   # 32:1 downsampler
    g.add_task(2, 1, 32)   # 1:32 upsampler
    g.add_task(3, 32, 32)
    g.add_task(4, 32, 32)
    g.add_task(5, 32, 32)
    for e in [(0, 1), (1, 2), (2, 5), (3, 4), (4, 5), (0, 4)]:
        g.add_edge(*e)
    return g


def demo(name: str, g: CanonicalGraph, hot_edge) -> None:
    print(f"=== {name} ===")
    sched = schedule_streaming(g, num_pes=8)
    print("task  ST   LO   FO")
    for v in sorted(g.nodes):
        t = sched.times[v]
        print(f"  {v}   {t.st:3d}  {t.lo:3d}  {t.fo:3d}")
    print("FIFO capacities:", dict(sched.buffer_sizes))

    ok = simulate_schedule(sched)
    print(f"sized FIFOs   -> completes at {ok.makespan} "
          f"(analytic {sched.makespan})")

    bad = simulate_schedule(sched, capacity_override=1)
    print(f"1-slot FIFOs  -> deadlocked: {bad.deadlocked} "
          f"(stuck: {', '.join(bad.blocked[:3])} ...)")

    sched.buffer_sizes[hot_edge] = sched.buffer_sizes[hot_edge] - 1
    bubble = simulate_schedule(sched)
    state = "deadlock" if bubble.deadlocked else f"bubble (makespan {bubble.makespan})"
    print(f"one slot less -> {state}\n")


def main() -> None:
    demo("Figure 9 graph (1)", fig9_graph1(), (0, 4))
    demo("Figure 9 graph (2)", fig9_graph2(), (4, 5))


if __name__ == "__main__":
    main()
