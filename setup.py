"""Legacy setup shim: enables `pip install -e .` with old tooling.

All metadata lives in pyproject.toml (package discovery under src/,
the `repro` console script, and the networkx/numpy dependencies).
"""
from setuptools import setup

setup()
