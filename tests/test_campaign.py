"""Tests for the repro.campaign subsystem.

Covers: registry round-trip, deterministic cell expansion/seeding,
parallel == serial result equality, store cache hits on re-run, code
version invalidation, and the ``repro campaign run/list/report`` CLI.
"""

import json
import math
import os

import pytest

from repro.campaign import (
    ALL_PES,
    CellResult,
    CellSpec,
    ResultStore,
    Scenario,
    aggregate,
    cell_key,
    evaluate_cell,
    execute_cells,
    get_scenario,
    list_scenarios,
    register,
    run_campaign,
    scenario_names,
)
from repro.cli import main

#: small but non-trivial sweep used across the executor tests
SMALL = Scenario.build(
    "test-small",
    "speedup",
    topologies={"fft": 8, "gaussian": 8},
    pe_sweeps={"fft": (4, 8), "gaussian": (4, 8)},
    variants=("lts", "rlx", "nstr"),
    num_graphs=2,
)


class TestRegistry:
    def test_paper_scenarios_registered(self):
        for name in ("fig10", "fig11", "fig12", "fig13", "table2"):
            assert name in scenario_names()
        assert {"layered", "serpar"} <= set(scenario_names())

    def test_listing_matches_names(self):
        assert [s.name for s in list_scenarios()] == scenario_names()

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(get_scenario("fig10"))

    def test_scenario_round_trip(self):
        for scn in list_scenarios():
            assert Scenario.from_dict(scn.to_dict()) == scn
        assert Scenario.from_dict(SMALL.to_dict()) == SMALL

    def test_cell_spec_round_trip(self):
        for spec in get_scenario("fig12").cells(num_graphs=2):
            clone = CellSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert clone == spec
            assert cell_key(clone) == cell_key(spec)


class TestExpansion:
    def test_deterministic_seeding(self):
        cells = SMALL.cells()
        again = SMALL.cells()
        assert cells == again
        # 2 topologies x 2 PE counts x 3 variants x 2 graphs
        assert len(cells) == 24
        # every (topology, PEs, variant) combination sweeps seeds 0..n-1
        seeds = {}
        for c in cells:
            seeds.setdefault((c.topology, c.num_pes, c.variant), []).append(c.graph_seed)
        assert all(s == [0, 1] for s in seeds.values())

    def test_limit_truncates(self):
        assert len(SMALL.cells(limit=5)) == 5
        assert SMALL.cells(limit=5) == SMALL.cells()[:5]

    def test_num_graphs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_GRAPHS", "3")
        scn = get_scenario("fig10")
        n = len(scn.cells())
        monkeypatch.delenv("REPRO_NUM_GRAPHS")
        assert n == len(scn.cells(num_graphs=3))

    def test_fig12_uses_all_pes_sentinel(self):
        assert all(c.num_pes == ALL_PES for c in get_scenario("fig12").cells(num_graphs=1))

    def test_code_version_changes_key(self):
        spec = SMALL.cells()[0]
        assert cell_key(spec, "v1") != cell_key(spec, "v2")


class TestExecutor:
    def test_serial_matches_direct_evaluation(self):
        cells = SMALL.cells(limit=4)
        report = execute_cells(cells, workers=0)
        assert report.computed == 4 and report.cached == 0
        for r in report.results:
            assert r.metrics == evaluate_cell(r.spec)

    def test_parallel_equals_serial(self):
        cells = SMALL.cells()
        serial = execute_cells(cells, workers=0)
        parallel = execute_cells(cells, workers=2)
        assert [r.spec for r in serial.results] == [r.spec for r in parallel.results]
        assert [r.metrics for r in serial.results] == [r.metrics for r in parallel.results]
        # and therefore identical aggregate statistics
        agg_s, agg_p = aggregate(serial.results), aggregate(parallel.results)
        assert [(g.topology, g.num_pes, g.variant, g.stats) for g in agg_s] == [
            (g.topology, g.num_pes, g.variant, g.stats) for g in agg_p
        ]

    def test_parallel_uses_worker_processes(self):
        report = execute_cells(SMALL.cells(), workers=2, chunksize=1)
        # evaluation happens in the pool, never in this process
        assert os.getpid() not in report.worker_pids
        assert 1 <= len(report.worker_pids) <= 2

    def test_profile_hz_attaches_a_sampler(self):
        report = execute_cells(SMALL.cells(), workers=0, profile_hz=500.0)
        profile = report.profile
        assert profile is not None
        assert profile["hz"] == 500.0 and not profile["running"]
        assert profile["elapsed_s"] > 0
        # the executing thread's stacks were captured (serial runs do
        # the work in-process, so the sampler must see it)
        assert profile["samples"] > 0
        assert profile["top_functions"] and profile["top_stacks"]
        assert profile["collapsed"].strip()

    def test_no_profiler_by_default(self):
        report = execute_cells(SMALL.cells(limit=1), workers=0)
        assert report.profile is None

    def test_validation_kind_reports_nan_not_crash(self):
        spec = CellSpec("t", "validation", "chain", 8, 0, 4, "rlx")
        metrics = evaluate_cell(spec)
        assert set(metrics) == {"error_pct", "deadlock"}
        assert metrics["deadlock"] in (0.0, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            evaluate_cell(CellSpec("t", "nope", "chain", 8, 0, 4, "rlx"))

    def test_cell_timings_feed_the_registry(self, tmp_path):
        from repro.campaign import ResultStore
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cells = SMALL.cells(limit=3)
        store = ResultStore(tmp_path, SMALL.name)
        execute_cells(cells, workers=0, store=store, registry=registry)
        execute_cells(cells, workers=0, store=store, registry=registry)
        snap = registry.snapshot()
        outcomes = {
            s["labels"]["outcome"]: s["value"]
            for s in snap["campaign.cells"]["series"]
        }
        assert outcomes == {"computed": 3, "cached": 3}
        timing = snap["campaign.cell_s"]["series"][0]
        # only computed cells are timed; store hits do no work
        assert timing["count"] == 3 and timing["sum"] > 0.0


class TestStore:
    def test_cache_hit_on_rerun(self, tmp_path):
        cells = SMALL.cells(limit=6)
        store = ResultStore(tmp_path, SMALL.name)
        first = execute_cells(cells, workers=0, store=store)
        assert (first.computed, first.cached) == (6, 0)

        fresh = ResultStore(tmp_path, SMALL.name)  # re-read from disk
        second = execute_cells(cells, workers=0, store=fresh)
        assert (second.computed, second.cached) == (0, 6)
        assert all(r.cached for r in second.results)
        assert [r.metrics for r in second.results] == [
            r.metrics for r in first.results
        ]

    def test_force_recomputes(self, tmp_path):
        cells = SMALL.cells(limit=3)
        store = ResultStore(tmp_path, SMALL.name)
        execute_cells(cells, workers=0, store=store)
        again = execute_cells(cells, workers=0, store=store, force=True)
        assert again.computed == 3 and again.cached == 0

    def test_partial_store_completes_missing(self, tmp_path):
        cells = SMALL.cells(limit=6)
        store = ResultStore(tmp_path, SMALL.name)
        execute_cells(cells[:2], workers=0, store=store)
        report = execute_cells(cells, workers=0, store=ResultStore(tmp_path, SMALL.name))
        assert (report.computed, report.cached) == (4, 2)

    def test_other_code_version_misses(self, tmp_path):
        cells = SMALL.cells(limit=2)
        store = ResultStore(tmp_path, SMALL.name)
        execute_cells(cells, workers=0, store=store)
        # rewrite the store as if an older code version had produced it
        lines = [json.loads(l) for l in store.path.read_text().splitlines()]
        for doc in lines:
            doc["key"] = cell_key(CellSpec.from_dict(doc["spec"]), "0.9.0")
        store.path.write_text("".join(json.dumps(d) + "\n" for d in lines))
        report = execute_cells(
            cells, workers=0, store=ResultStore(tmp_path, SMALL.name)
        )
        assert (report.computed, report.cached) == (2, 0)

    def test_duplicate_cells_computed_once(self):
        spec = SMALL.cells(limit=1)[0]
        report = execute_cells([spec, spec], workers=0)
        assert report.computed == 1
        assert len(report.results) == 2
        assert report.results[0] is report.results[1]

    def test_torn_line_recomputed(self, tmp_path):
        cells = SMALL.cells(limit=2)
        store = ResultStore(tmp_path, SMALL.name)
        execute_cells(cells, workers=0, store=store)
        with open(store.path, "a") as fh:
            fh.write('{"torn": ')  # simulated crash mid-write
        reread = ResultStore(tmp_path, SMALL.name)
        assert len(reread) == 2

    def test_run_campaign_end_to_end(self, tmp_path):
        run1 = run_campaign(SMALL, workers=2, limit=8, store_dir=tmp_path)
        assert run1.report.computed == 8
        run2 = run_campaign(SMALL, workers=2, limit=8, store_dir=tmp_path)
        assert run2.report.cached == 8 and run2.report.computed == 0
        assert [r.metrics for r in run1.results] == [r.metrics for r in run2.results]


class TestAggregation:
    def test_nan_metrics_excluded_from_stats(self):
        specs = [CellSpec("t", "k", "chain", 8, i, 4, "rlx") for i in range(3)]
        results = [
            CellResult(specs[0], {"x": 1.0, "miss": 1.0}, 0.0, 0),
            CellResult(specs[1], {"x": 3.0, "miss": 0.0}, 0.0, 0),
            CellResult(specs[2], {"x": math.nan, "miss": 1.0}, 0.0, 0),
        ]
        (group,) = aggregate(results)
        assert group.n == 3
        assert group.stats["x"].n == 2  # NaN dropped
        assert group.totals["miss"] == 2.0


class TestCampaignCli:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "serpar" in out

    def test_unknown_scenario_errors(self, capsys):
        assert main(["campaign", "run", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_and_report(self, tmp_path, capsys):
        store = str(tmp_path)
        rc = main(
            ["campaign", "run", "fig10", "--workers", "2", "--num-graphs", "2",
             "--limit", "12", "--store", store]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "12 computed, 0 cached" in out
        assert "Figure 10" in out  # the paper-style table

        rc = main(
            ["campaign", "run", "fig10", "--workers", "2", "--num-graphs", "2",
             "--limit", "12", "--store", store]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 computed, 12 cached" in out

        csv_path = tmp_path / "cells.csv"
        json_path = tmp_path / "report.json"
        rc = main(
            ["campaign", "report", "fig10", "--store", store,
             "--csv", str(csv_path), "--json", str(json_path)]
        )
        assert rc == 0
        assert "12 stored cells" in capsys.readouterr().out
        header, *rows = csv_path.read_text().strip().splitlines()
        assert "speedup" in header and len(rows) == 12
        doc = json.loads(json_path.read_text())
        assert len(doc["cells"]) == 12 and doc["scenario"]["name"] == "fig10"

    def test_report_without_results_fails(self, tmp_path, capsys):
        assert main(["campaign", "report", "fig11", "--store", str(tmp_path)]) == 1
        assert "no stored results" in capsys.readouterr().err

    def test_report_format_csv_prints_cells(self, tmp_path, capsys):
        store = str(tmp_path)
        main(["campaign", "run", "fig10", "--num-graphs", "1",
              "--limit", "3", "--store", store])
        capsys.readouterr()
        rc = main(["campaign", "report", "fig10", "--store", store,
                   "--format", "csv"])
        assert rc == 0
        header, *rows = capsys.readouterr().out.strip().splitlines()
        assert header.startswith("scenario,kind,topology")
        assert "speedup" in header and len(rows) == 3
