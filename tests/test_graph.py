"""Unit tests for the CanonicalGraph IR."""

import pytest

from repro import CanonicalGraph, CanonicalityError, NodeKind


@pytest.fixture
def small() -> CanonicalGraph:
    g = CanonicalGraph()
    g.add_source("src", 8)
    g.add_task("e", 8, 8)
    g.add_task("d", 8, 2)
    g.add_buffer("b", 2, 6)
    g.add_task("u", 6, 12)
    g.add_sink("out", 12)
    for e in [("src", "e"), ("e", "d"), ("d", "b"), ("b", "u"), ("u", "out")]:
        g.add_edge(*e)
    return g


class TestConstruction:
    def test_add_task_infers_kind(self, small):
        assert small.kind("e") is NodeKind.ELEMENTWISE
        assert small.kind("d") is NodeKind.DOWNSAMPLER
        assert small.kind("u") is NodeKind.UPSAMPLER

    def test_duplicate_node_rejected(self, small):
        with pytest.raises(CanonicalityError):
            small.add_task("e", 4, 4)

    def test_edge_volume_matching(self, small):
        assert small.volume("e", "d") == 8
        assert small.volume("b", "u") == 6

    def test_mismatched_edge_rejected(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("b", 8, 8)
        with pytest.raises(CanonicalityError):
            g.add_edge("a", "b")

    def test_sink_cannot_produce(self, small):
        small.add_task("x", 12, 12)
        with pytest.raises(CanonicalityError):
            small.add_edge("out", "x")

    def test_source_cannot_consume(self, small):
        small.add_task("y", 8, 8)
        with pytest.raises(CanonicalityError):
            small.add_edge("y", "src")

    def test_missing_node_lookup(self, small):
        with pytest.raises(KeyError):
            small.spec("ghost")
        with pytest.raises(KeyError):
            small.volume("e", "u")


class TestQueries:
    def test_counts(self, small):
        assert len(small) == 6
        assert small.number_of_edges() == 5
        assert small.num_tasks() == 3

    def test_entry_exit(self, small):
        assert small.entry_nodes() == ["src"]
        assert small.exit_nodes() == ["out"]

    def test_computational_and_buffers(self, small):
        assert set(small.computational_nodes()) == {"e", "d", "u"}
        assert small.buffer_nodes() == ["b"]

    def test_topological_order_respects_edges(self, small):
        order = small.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in small.edges:
            assert pos[u] < pos[v]

    def test_total_work_counts_only_tasks(self, small):
        # e: 8, d: 8, u: 12; passives contribute nothing
        assert small.total_work() == 28

    def test_subgraph_shares_specs(self, small):
        sub = small.subgraph(["e", "d"])
        assert len(sub) == 2
        assert sub.number_of_edges() == 1
        assert sub.spec("e") is small.spec("e")

    def test_copy_is_independent(self, small):
        clone = small.copy()
        clone.add_task("extra", 3, 3)
        assert "extra" in clone
        assert "extra" not in small


class TestValidate:
    def test_valid_graph_passes(self, small):
        small.validate()

    def test_cycle_rejected(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("b", 4, 4)
        g.add_edge("a", "b")
        g.nx.add_edge("b", "a")  # bypass the API to build a cycle
        with pytest.raises(CanonicalityError):
            g.validate()

    def test_volume_mismatch_detected_post_hoc(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("b", 8, 8)
        g.nx.add_edge("a", "b")  # bypass add_edge validation
        with pytest.raises(CanonicalityError):
            g.validate()
