"""Unit tests for the synthetic topology generators (Section 7.1)."""

import networkx as nx
import pytest

from repro.graphs import (
    PAPER_SIZES,
    assign_random_volumes,
    chain_topology,
    cholesky_topology,
    expected_task_count,
    fft_topology,
    gaussian_elimination_topology,
    make_rng,
    random_canonical_graph,
    random_layered_topology,
    series_parallel_topology,
    topology_by_name,
)


class TestTaskCounts:
    def test_paper_sizes_match_paper_counts(self):
        """Chain 8, FFT 223, Gaussian 135, Cholesky 120 (Section 7.1)."""
        expected = {"chain": 8, "fft": 223, "gaussian": 135, "cholesky": 120}
        for topo, size in PAPER_SIZES.items():
            g = topology_by_name(topo, size)
            assert g.number_of_nodes() == expected[topo]
            assert expected_task_count(topo, size) == expected[topo]

    @pytest.mark.parametrize("points", [2, 4, 8, 16, 32])
    def test_fft_closed_form(self, points):
        import math

        g = fft_topology(points)
        assert g.number_of_nodes() == 2 * points - 1 + points * int(math.log2(points))

    @pytest.mark.parametrize("m", [2, 4, 8, 16])
    def test_gaussian_closed_form(self, m):
        g = gaussian_elimination_topology(m)
        assert g.number_of_nodes() == (m * m + m - 2) // 2

    @pytest.mark.parametrize("t", [1, 2, 4, 8, 10])
    def test_cholesky_closed_form(self, t):
        g = cholesky_topology(t)
        assert g.number_of_nodes() == t * (t + 1) * (t + 2) // 6

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            topology_by_name("torus", 4)
        with pytest.raises(ValueError):
            expected_task_count("torus", 4)


class TestStructure:
    @pytest.mark.parametrize(
        "topo,size", [("chain", 8), ("fft", 16), ("gaussian", 8), ("cholesky", 6)]
    )
    def test_all_are_dags(self, topo, size):
        assert nx.is_directed_acyclic_graph(topology_by_name(topo, size))

    def test_chain_is_a_path(self):
        g = chain_topology(5)
        assert g.number_of_edges() == 4
        degrees = sorted(d for _, d in g.degree())
        assert degrees == [1, 1, 2, 2, 2]

    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_topology(12)

    def test_fft_butterflies_have_two_inputs(self):
        g = fft_topology(8)
        butterflies = [n for n in g if n[0] == "b"]
        assert all(g.in_degree(b) == 2 for b in butterflies)

    def test_gaussian_pivot_enables_updates(self):
        g = gaussian_elimination_topology(4)
        assert g.has_edge(("p", 1), ("u", 1, 2))
        assert g.has_edge(("u", 1, 2), ("p", 2))

    def test_cholesky_dependencies(self):
        g = cholesky_topology(4)
        assert g.has_edge(("potrf", 0), ("trsm", 1, 0))
        assert g.has_edge(("trsm", 1, 0), ("syrk", 1, 0))
        assert g.has_edge(("syrk", 1, 0), ("potrf", 1))
        assert g.has_edge(("trsm", 2, 0), ("gemm", 2, 1, 0))


class TestRandomFamilies:
    """Layered DAGs and series-parallel graphs (campaign extensions)."""

    @pytest.mark.parametrize("family", ["layered", "serpar"])
    def test_structure_is_a_seeded_dag(self, family):
        builder = {
            "layered": random_layered_topology,
            "serpar": series_parallel_topology,
        }[family]
        g = builder(60, make_rng(7))
        assert nx.is_directed_acyclic_graph(g)
        assert nx.is_weakly_connected(g)
        same = builder(60, make_rng(7))
        assert sorted(g.edges) == sorted(same.edges)
        other = builder(60, make_rng(8))
        assert sorted(g.edges) != sorted(other.edges)

    def test_layered_exact_task_count(self):
        for n in (1, 2, 17, 128):
            g = random_layered_topology(n, make_rng(0))
            assert g.number_of_nodes() == n

    @pytest.mark.parametrize("family", ["layered", "serpar"])
    def test_single_entry_and_exit(self, family):
        builder = {
            "layered": random_layered_topology,
            "serpar": series_parallel_topology,
        }[family]
        for seed in range(10):
            g = builder(50, make_rng(seed))
            entries = [v for v in g if g.in_degree(v) == 0]
            exits = [v for v in g if g.out_degree(v) == 0]
            assert len(entries) == 1 and len(exits) == 1

    @pytest.mark.parametrize("family,size", [("layered", 64), ("serpar", 60)])
    def test_canonical_and_deterministic_by_seed(self, family, size):
        g = random_canonical_graph(family, size, seed=5)
        g.validate()
        h = random_canonical_graph(family, size, seed=5)
        assert sorted(map(str, g.nodes)) == sorted(map(str, h.nodes))
        assert {str(v): (g.spec(v).input_volume, g.spec(v).output_volume) for v in g.nodes} == {
            str(v): (h.spec(v).input_volume, h.spec(v).output_volume) for v in h.nodes
        }


class TestRandomVolumes:
    def test_result_is_canonical(self):
        for topo, size in PAPER_SIZES.items():
            g = random_canonical_graph(topo, size, seed=0)
            g.validate()  # raises on violation

    def test_deterministic_per_seed(self):
        a = random_canonical_graph("fft", 8, seed=42)
        b = random_canonical_graph("fft", 8, seed=42)
        assert {v: (a.spec(v).input_volume, a.spec(v).output_volume) for v in a.nodes} == {
            v: (b.spec(v).input_volume, b.spec(v).output_volume) for v in b.nodes
        }

    def test_seeds_differ(self):
        a = random_canonical_graph("fft", 8, seed=1)
        b = random_canonical_graph("fft", 8, seed=2)
        vols_a = [a.spec(v).output_volume for v in sorted(a.nodes, key=str)]
        vols_b = [b.spec(v).output_volume for v in sorted(b.nodes, key=str)]
        assert vols_a != vols_b

    def test_volume_choices_respected(self):
        g = random_canonical_graph("gaussian", 8, seed=0, volume_choices=(4, 8))
        for v in g.nodes:
            spec = g.spec(v)
            assert spec.input_volume in (4, 8)
            assert spec.output_volume in (4, 8)

    def test_mixed_node_kinds_emerge(self):
        from repro import NodeKind

        kinds = set()
        for seed in range(10):
            g = random_canonical_graph("cholesky", 6, seed=seed)
            kinds |= {g.kind(v) for v in g.nodes}
        assert NodeKind.ELEMENTWISE in kinds
        assert NodeKind.DOWNSAMPLER in kinds
        assert NodeKind.UPSAMPLER in kinds

    def test_shared_consumers_have_equal_producer_volumes(self):
        g = random_canonical_graph("fft", 16, seed=3)
        for v in g.nodes:
            vols = {g.spec(u).output_volume for u in g.predecessors(v)}
            assert len(vols) <= 1

    def test_rejects_cyclic_topology(self):
        cyc = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            assign_random_volumes(cyc, make_rng(0))
