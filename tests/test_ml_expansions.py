"""Unit tests for the canonical operator expansions (Section 3.2)."""

import pytest

from repro import NodeKind, schedule_streaming, streaming_depth
from repro.ml import CanonicalModelBuilder, largest_divisor_leq
from repro.sim import simulate_schedule


class TestLargestDivisor:
    @pytest.mark.parametrize(
        "n,cap,expected",
        [(12, 6, 6), (12, 5, 4), (7, 3, 1), (2048, 512, 512), (100, 100, 100), (9, 2, 1)],
    )
    def test_values(self, n, cap, expected):
        assert largest_divisor_leq(n, cap) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            largest_divisor_leq(0, 4)


class TestSimpleOps:
    def test_ewise_shapes(self):
        b = CanonicalModelBuilder("m")
        x = b.input(16)
        y = b.relu(x)
        g = b.finish()
        assert g.kind(y.node) is NodeKind.ELEMENTWISE
        assert y.size == 16

    def test_add_requires_equal_sizes(self):
        b = CanonicalModelBuilder("m")
        with pytest.raises(ValueError):
            b.add(b.input(8), b.input(16))

    def test_downsample_divisibility(self):
        b = CanonicalModelBuilder("m")
        with pytest.raises(ValueError):
            b.maxpool(b.input(10), 4)

    def test_reshape_is_buffer(self):
        b = CanonicalModelBuilder("m")
        t = b.reshape(b.input(8))
        assert b.graph.kind(t.node) is NodeKind.BUFFER

    def test_output_is_sink(self):
        b = CanonicalModelBuilder("m")
        sink = b.output(b.relu(b.input(8)))
        g = b.finish()
        assert g.kind(sink) is NodeKind.SINK


class TestConcat:
    def test_power_of_two_streams(self):
        b = CanonicalModelBuilder("m")
        parts = [b.relu(b.input(8)) for _ in range(4)]
        out = b.concat(*parts)
        g = b.finish()
        assert out.size == 32
        assert g.kind(out.node) is NodeKind.UPSAMPLER  # interleave task

    def test_non_power_of_two_buffers(self):
        b = CanonicalModelBuilder("m")
        parts = [b.relu(b.input(8)) for _ in range(3)]
        out = b.concat(*parts)
        g = b.finish()
        assert out.size == 24
        assert g.kind(out.node) is NodeKind.BUFFER


class TestMatmul:
    def test_inner_variant_structure(self):
        """Figure 3 (1): two buffers + one downsampler."""
        b = CanonicalModelBuilder("m")
        out = b.matmul(b.input(4 * 3), b.input(3 * 2), 4, 3, 2, variant="inner")
        g = b.finish()
        assert out.size == 8
        assert g.kind(out.node) is NodeKind.DOWNSAMPLER
        assert g.spec(out.node).input_volume == 4 * 3 * 2

    def test_cols_variant_task_count(self):
        """Figure 3 (2): one task per column block + interleave tree."""
        b = CanonicalModelBuilder("m", max_parallel=4)
        b.matmul(b.input(4 * 8), b.input(8 * 4), 4, 8, 4, variant="cols")
        g = b.finish()
        mv = [v for v in g.nodes if str(v).endswith(".mv")]
        assert len(mv) == 4
        for t in mv:
            assert g.spec(t).input_volume == 4 * 8  # full A per column
            assert g.spec(t).output_volume == 4

    def test_cols_variant_blocked(self):
        """Capped fan-out: each task covers m/d columns and re-reads A."""
        b = CanonicalModelBuilder("m", max_parallel=2)
        out = b.matmul(b.input(4 * 8), b.input(8 * 4), 4, 8, 4, variant="cols")
        g = b.finish()
        mv = [v for v in g.nodes if str(v).endswith(".mv")]
        assert len(mv) == 2
        assert g.spec(mv[0]).input_volume == 4 * 8 * 2
        assert out.size == 16

    def test_ksplit_variant_sum_tree(self):
        """Figure 3 (3): outer products + element-wise sum tree."""
        b = CanonicalModelBuilder("m", max_parallel=4)
        out = b.matmul(b.input(4 * 4), b.input(4 * 8), 4, 4, 8, variant="ksplit")
        g = b.finish()
        outers = [v for v in g.nodes if str(v).endswith(".outer")]
        sums = [v for v in g.nodes if str(v).endswith(".sum")]
        assert len(outers) == 4
        assert len(sums) == 3  # binary tree over 4 parts
        assert g.kind(out.node) is NodeKind.ELEMENTWISE
        assert out.size == 32

    def test_auto_picks_wider_axis(self):
        b = CanonicalModelBuilder("m", max_parallel=64)
        b.matmul(b.input(2 * 4), b.input(4 * 16), 2, 4, 16)  # m > k -> cols
        b.matmul(b.input(2 * 16), b.input(16 * 4), 2, 16, 4)  # k > m -> ksplit
        g = b.finish()
        assert any(str(v).endswith(".mv") for v in g.nodes)
        assert any(str(v).endswith(".outer") for v in g.nodes)

    def test_size_validation(self):
        b = CanonicalModelBuilder("m")
        with pytest.raises(ValueError):
            b.matmul(b.input(5), b.input(6), 2, 3, 2)

    def test_matmul_schedules_and_simulates(self):
        b = CanonicalModelBuilder("m", max_parallel=4)
        out = b.matmul(b.input(4 * 4), b.input(4 * 4), 4, 4, 4, variant="cols")
        b.output(out)
        g = b.finish()
        s = schedule_streaming(g, 8)
        sim = simulate_schedule(s)
        assert not sim.deadlocked


class TestConv:
    def test_spatial_dims(self):
        b = CanonicalModelBuilder("m", max_parallel=8)
        x = b.input(3 * 8 * 8)
        out, h, w = b.conv2d(x, 3, 16, 8, 8, kernel=3, stride=2)
        assert (h, w) == (4, 4)
        assert out.size == 16 * 16

    def test_pointwise_conv(self):
        b = CanonicalModelBuilder("m", max_parallel=8)
        x = b.input(4 * 4 * 4)
        out, h, w = b.conv2d(x, 4, 8, 4, 4, kernel=1, stride=1, pad=0)
        assert (h, w) == (4, 4)
        assert out.size == 8 * 16

    def test_input_size_checked(self):
        b = CanonicalModelBuilder("m")
        with pytest.raises(ValueError):
            b.conv2d(b.input(10), 3, 8, 8, 8, kernel=3)


class TestSoftmaxAndNorms:
    def test_softmax_structure(self):
        """Figure 5: max/sub/exp/sum/div tasks + 4 buffer nodes."""
        b = CanonicalModelBuilder("m")
        out = b.softmax(b.input(16))
        g = b.finish()
        labels = [str(v).rsplit(".", 1)[-1] for v in g.nodes]
        for role in ("max", "sub", "exp", "sum", "div"):
            assert role in labels
        assert out.size == 16
        assert len(g.buffer_nodes()) == 4

    def test_softmax_runs_deadlock_free(self):
        b = CanonicalModelBuilder("m")
        b.output(b.softmax(b.input(16)))
        g = b.finish()
        s = schedule_streaming(g, 8)
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan == s.makespan

    def test_normalize_buffered_serializes(self):
        """Figure 4 (1): the two phases run back to back (~2N)."""
        b = CanonicalModelBuilder("m")
        b.output(b.normalize(b.input(32), streaming=False))
        depth = streaming_depth(b.finish())
        assert depth >= 2 * 32

    def test_normalize_streaming_needs_fifo_space(self):
        """Figure 4 (2): x streams to both tasks; the Section 6 pass must
        give the direct x -> div channel enough slack to avoid deadlock."""
        b = CanonicalModelBuilder("m")
        x = b.input(32)
        e = b.ewise(x, op="feed")  # computational producer so edges stream
        b.output(b.normalize(e, streaming=True))
        g = b.finish()
        s = schedule_streaming(g, 8)
        assert any(cap > 1 for cap in s.buffer_sizes.values())
        assert not simulate_schedule(s).deadlocked
        assert simulate_schedule(s, capacity_override=1).deadlocked

    def test_layernorm_shape(self):
        b = CanonicalModelBuilder("m")
        out = b.layernorm(b.input(64))
        assert out.size == 64
