"""Tests for the state-space (periodic) CSDF throughput analyzer."""

import pytest

from repro.graphs import random_canonical_graph
from repro.sdf import canonical_to_csdf, self_timed_makespan
from repro.sdf.state_space import (
    add_iteration_feedback,
    csdf_makespan_via_state_space,
    periodic_throughput,
)

from conftest import build_elementwise_chain


class TestFeedbackConstruction:
    def test_feedback_edges_added(self):
        g = build_elementwise_chain(3, 8)
        csdf = add_iteration_feedback(canonical_to_csdf(g), g)
        # at least one channel from the exit back to the entry side
        backs = [ch for ch in csdf.channels if ch.initial_tokens > 0]
        assert backs

    def test_balance_still_consistent(self):
        g = build_elementwise_chain(4, 8)
        csdf = add_iteration_feedback(canonical_to_csdf(g), g)
        q = csdf.repetition_vector()
        assert all(v > 0 for v in q.values())


class TestPeriodicRegime:
    def test_chain_period_matches_single_iteration(self):
        """With the feedback token, iterations serialize: the steady
        period equals the one-iteration makespan up to the tiny pipeline
        overlap between consecutive iterations (the paper: "the
        difference is negligible in most cases")."""
        g = build_elementwise_chain(4, 16)
        once = self_timed_makespan(canonical_to_csdf(g)).makespan
        period = csdf_makespan_via_state_space(g)
        assert once - len(g) - 1 <= period <= once

    @pytest.mark.parametrize("topo,size", [("chain", 6), ("fft", 4)])
    def test_synthetic_graphs_agree(self, topo, size):
        for seed in range(3):
            g = random_canonical_graph(topo, size, seed=seed)
            once = self_timed_makespan(canonical_to_csdf(g)).makespan
            period = csdf_makespan_via_state_space(g)
            assert period <= once
            assert once - period <= len(g) + 1

    def test_periodic_result_fields(self):
        g = build_elementwise_chain(3, 8)
        csdf = add_iteration_feedback(canonical_to_csdf(g), g)
        res = periodic_throughput(csdf)
        assert res.period > 0
        assert res.throughput == 1 / res.period
        assert res.explored_iterations >= 2
