"""Tests for the reliability layer: fault plans and injection, the
circuit breaker, crash-safe cache recovery (torn tails, corrupt records,
interrupted compaction), supervised portfolio workers, per-request
deadlines, client transport recovery and retries, shed/drain/health, and
an in-process chaos smoke run."""

import json
import os
import random
import shutil
import socket
import struct
import threading
import time

import pytest

from repro.campaign import append_jsonl, read_jsonl
from repro.campaign.store import record_crc as campaign_record_crc
from repro.core import graph_to_dict
from repro.graphs import random_canonical_graph
from repro.obs import MetricsRegistry
from repro.service import (
    FAULT_SITES,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ScheduleCache,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
    ServiceError,
    run_loadgen,
    run_portfolio,
)
from repro.service.cache import record_crc as cache_record_crc
from repro.service.portfolio import (
    PortfolioPool,
    QuarantinedError,
    WorkerCrashError,
    WorkerHangError,
)


def schedule_doc(topology="chain", size=6, seed=0, num_pes=4, **extra):
    doc = {
        "op": "schedule",
        "graph": graph_to_dict(random_canonical_graph(topology, size, seed=seed)),
        "num_pes": num_pes,
    }
    doc.update(extra)
    return doc


# ----------------------------------------------------------------------
# fault plans and the injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_known_sites_cover_the_stack(self):
        assert FAULT_SITES == {
            "disk.read", "disk.write", "worker.crash", "worker.hang",
            "conn.drop", "conn.partial", "compute.slow", "shard.kill",
        }

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="disk.reed")
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.from_dict({"rules": [{"site": "nope", "rate": 1.0}]})

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ValueError, match="unknown rule fields"):
            FaultPlan.from_dict(
                {"rules": [{"site": "conn.drop", "rte": 0.5}]}
            )

    def test_malformed_plans_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict([])  # not an object
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"seed": 3})  # no rules list
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"rules": [{"rate": 1.0}]})  # no site
        with pytest.raises(ValueError):
            FaultRule(site="conn.drop", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(site="conn.drop", count=-1)
        with pytest.raises(ValueError):
            FaultRule(site="compute.slow", seconds=-0.1)

    def test_plan_round_trips_through_dict(self):
        plan = FaultPlan.from_dict(
            {"seed": 9, "rules": [
                {"site": "worker.hang", "rate": 0.5, "count": 2,
                 "after": 3, "seconds": 0.2},
                {"site": "conn.drop", "rate": 0.1},
            ]}
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.seed == 9
        assert [r.site for r in again.rules] == ["worker.hang", "conn.drop"]
        assert again.rules[0].seconds == 0.2 and again.rules[0].after == 3

    def test_fire_sequence_is_deterministic(self):
        doc = {"seed": 42, "rules": [
            {"site": "conn.drop", "rate": 0.3},
            {"site": "disk.read", "rate": 0.7, "after": 2},
        ]}
        runs = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan.from_dict(doc))
            runs.append([
                (site, inj.fire(site) is not None)
                for site in ["conn.drop", "disk.read"] * 50
            ])
        assert runs[0] == runs[1]
        assert any(fired for _, fired in runs[0])

    def test_sites_draw_independent_streams(self):
        # traffic at one site must not shift decisions at another: the
        # disk.read sequence is identical whether or not conn.drop is
        # being consulted in between
        doc = {"seed": 7, "rules": [
            {"site": "conn.drop", "rate": 0.5},
            {"site": "disk.read", "rate": 0.5},
        ]}
        quiet = FaultInjector(FaultPlan.from_dict(doc))
        noisy = FaultInjector(FaultPlan.from_dict(doc))
        quiet_seq = [quiet.fire("disk.read") is not None for _ in range(40)]
        noisy_seq = []
        for _ in range(40):
            noisy.fire("conn.drop")
            noisy_seq.append(noisy.fire("disk.read") is not None)
        assert quiet_seq == noisy_seq

    def test_count_and_after_bound_firing(self):
        rule = FaultRule(site="conn.drop", rate=1.0, count=2, after=3)
        inj = FaultInjector(FaultPlan([rule], seed=0))
        fired = [inj.fire("conn.drop") is not None for _ in range(8)]
        assert fired == [False, False, False, True, True, False, False, False]
        assert rule.exhausted
        assert not inj.active()
        assert inj.fired["conn.drop"] == 2

    def test_unlimited_rule_keeps_plan_active(self):
        inj = FaultInjector(
            FaultPlan([FaultRule(site="conn.drop", rate=0.0)], seed=0)
        )
        for _ in range(10):
            assert inj.fire("conn.drop") is None
        assert inj.active()  # count=None can always fire later

    def test_unplanned_site_never_fires(self):
        inj = FaultInjector(
            FaultPlan([FaultRule(site="conn.drop", rate=1.0)], seed=0)
        )
        assert inj.fire("disk.read") is None

    def test_snapshot_reports_rules_and_counts(self):
        inj = FaultInjector(
            FaultPlan([FaultRule(site="compute.slow", rate=1.0, count=1,
                                 seconds=0.01)], seed=5)
        )
        assert inj.fire("compute.slow") is not None
        snap = inj.snapshot()
        assert snap["seed"] == 5 and snap["active"] is False
        assert snap["fired"] == {"compute.slow": 1}
        (rule,) = snap["rules"]
        assert rule["site"] == "compute.slow"
        assert rule["fired"] == 1 and rule["checks"] == 1
        assert rule["seconds"] == 0.01

    def test_fire_counts_into_bound_registry(self):
        reg = MetricsRegistry()
        inj = FaultInjector(
            FaultPlan([FaultRule(site="conn.drop", rate=1.0, count=3)])
        )
        inj.bind(registry=reg)
        for _ in range(5):
            inj.fire("conn.drop")
        family = reg.counter(
            "service.faults_injected",
            "Faults injected by the active fault plan",
            labels=("site",),
        )
        assert family.labels(site="conn.drop").value == 3

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 3, "rules": [{"site": "conn.drop", "rate": 1.0}]}
        ))
        inj = FaultInjector.load(path)
        assert inj.plan.seed == 3
        assert inj.fire("conn.drop") is not None

    def test_serve_rejects_bad_plan_with_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(
            {"rules": [{"site": "disk.reed"}]}
        ))
        code = main([
            "serve", "--port", "0",
            "--store", str(tmp_path / "s.jsonl"),
            "--fault-plan", str(plan),
        ])
        assert code == 2
        assert "bad fault plan" in capsys.readouterr().err

    def test_committed_smoke_plan_is_valid(self):
        plan = FaultPlan.load("benchmarks/faultplans/smoke.json")
        assert plan.seed == 7
        sites = {r.site for r in plan.rules}
        assert "worker.crash" in sites and "conn.partial" in sites
        # every rule is bounded, so the plan drains and health recovers
        assert all(r.count is not None for r in plan.rules)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        return clock, CircuitBreaker(
            name="disk", failure_threshold=threshold, cooldown_s=cooldown,
            clock=clock,
        )

    def test_opens_after_consecutive_failures(self):
        _, br = self.make()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open" and br.opens == 1
        assert not br.allow()

    def test_success_resets_the_failure_run(self):
        _, br = self.make()
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # never 3 consecutive

    def test_half_open_admits_exactly_one_probe(self):
        clock, br = self.make()
        for _ in range(3):
            br.record_failure()
        clock.t += 10.0
        assert br.state == "half_open"
        assert br.allow()  # the probe
        assert not br.allow()  # everyone else keeps degrading

    def test_probe_success_closes(self):
        clock, br = self.make()
        for _ in range(3):
            br.record_failure()
        clock.t += 10.0
        assert br.allow()
        br.record_success()
        assert br.state == "closed" and br.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock, br = self.make()
        for _ in range(3):
            br.record_failure()
        clock.t += 10.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open" and br.opens == 2
        assert not br.allow()
        clock.t += 9.9
        assert not br.allow()  # cooldown restarted at the reopen
        clock.t += 0.2
        assert br.allow()

    def test_force_open_and_reset(self):
        _, br = self.make()
        br.force_open()
        assert br.state == "open" and not br.allow()
        br.reset()
        assert br.state == "closed" and br.allow()

    def test_state_gauge_tracks_transitions(self):
        reg = MetricsRegistry()
        clock, br = self.make()
        br.bind(registry=reg)
        gauge = reg.gauge(
            "breaker.state",
            "Circuit breaker state (0 closed, 0.5 half-open, 1 open)",
            labels=("name",),
        ).labels(name="disk")
        assert gauge.value == 0.0
        br.force_open()
        assert gauge.value == 1.0
        clock.t += 10.0
        assert br.state == "half_open"
        assert gauge.value == 0.5

    def test_half_open_concurrent_probes_admit_exactly_one(self):
        # two threads hitting allow() at the same instant while the
        # breaker is half-open must race for one probe slot; the state
        # machine has to stay consistent whichever thread wins
        for trial in range(20):
            clock, br = self.make()
            for _ in range(3):
                br.record_failure()
            clock.t += 10.0
            assert br.state == "half_open"
            barrier = threading.Barrier(2)
            admitted = []

            def probe():
                barrier.wait()
                if br.allow():
                    admitted.append(threading.get_ident())

            threads = [threading.Thread(target=probe) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(admitted) == 1, f"trial {trial}: {len(admitted)} probes"
            assert br.state == "half_open"
            assert not br.allow()  # the probe slot stays taken
            br.record_success()  # the winning probe reports back
            assert br.state == "closed" and br.allow()

    def test_half_open_concurrent_probe_failure_reopens_once(self):
        clock, br = self.make()
        for _ in range(3):
            br.record_failure()
        clock.t += 10.0
        barrier = threading.Barrier(2)
        results = []

        def probe():
            barrier.wait()
            results.append(br.allow())

        threads = [threading.Thread(target=probe) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == [False, True]
        br.record_failure()  # the admitted probe fails
        assert br.state == "open" and br.opens == 2
        assert not br.allow()

    def test_to_dict_shape(self):
        _, br = self.make()
        doc = br.to_dict()
        assert doc == {
            "name": "disk", "state": "closed", "failures": 0,
            "threshold": 3, "cooldown_s": 10.0, "opens": 0,
        }

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# crash-safe cache: checksums, torn tails, quarantine, degradation
# ----------------------------------------------------------------------
def fill_cache(path, n=6, capacity=64):
    cache = ScheduleCache(path, capacity=capacity)
    for i in range(n):
        cache.put(f"k{i}", {"value": i, "pad": "x" * 20})
    return cache


class TestCrashSafeCache:
    def test_records_carry_verifiable_checksums(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=3)
        lines = path.read_bytes().splitlines()
        assert len(lines) == 3
        for line in lines:
            doc = json.loads(line)
            assert doc["crc"] == cache_record_crc(doc["key"], doc["entry"])

    def test_corrupt_interior_record_is_quarantined_at_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=5)
        lines = path.read_bytes().splitlines(keepends=True)
        # flip a digit inside k2's entry: still JSON, but the crc lies
        lines[2] = lines[2].replace(b'"value": 2', b'"value": 7')
        path.write_bytes(b"".join(lines))
        cache = ScheduleCache(path, capacity=64)
        assert cache.corrupt_records == 1
        assert cache.get("k2") is None  # quarantined, never served wrong
        assert path.with_name("store.jsonl.quarantine").exists()
        for i in (0, 1, 3, 4):
            entry, tier = cache.get(f"k{i}")
            assert entry["value"] == i and tier == "store"

    def test_unparseable_line_is_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=2)
        with open(path, "ab") as fh:
            fh.write(b"{this is not json}\n")
        cache = ScheduleCache(path, capacity=64)
        assert cache.corrupt_records == 1
        assert cache.get("k0") is not None and cache.get("k1") is not None

    def test_quarantine_rotates_at_its_size_bound(self, tmp_path):
        # a persistently corrupt disk must never fill the volume through
        # the quarantine file: it rotates at the bound, keeping exactly
        # one previous generation
        path = tmp_path / "store.jsonl"
        qpath = path.with_name("store.jsonl.quarantine")
        junk = b"{broken " + b"x" * 120 + b"}\n"
        fill_cache(path, n=1)
        with open(path, "ab") as fh:
            fh.write(junk)
        sizes = []
        for _ in range(8):
            cache = ScheduleCache(path, capacity=8,
                                  quarantine_max_bytes=256)
            assert cache.corrupt_records == 1
            sizes.append(qpath.stat().st_size)
        assert qpath.with_name("store.jsonl.quarantine.1").exists()
        assert max(sizes) <= 256 + len(junk)  # bounded, not monotone
        assert sizes[-1] < sizes[0] * 8  # actually rotated, not grown
        assert cache.counters()["quarantine_bytes"] == qpath.stat().st_size

    def test_quarantine_bytes_gauge_is_registered(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=1)
        with open(path, "ab") as fh:
            fh.write(b"{junk}\n")
        registry = MetricsRegistry()
        cache = ScheduleCache(path, capacity=8, registry=registry)
        assert cache.corrupt_records == 1
        gauge = registry.gauge("cache.quarantine_bytes")
        assert gauge.value == path.with_name(
            "store.jsonl.quarantine").stat().st_size
        assert gauge.value > 0

    def test_legacy_records_without_crc_still_served(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with open(path, "wb") as fh:
            fh.write(json.dumps({"key": "old", "entry": {"value": 1}}).encode()
                     + b"\n")
        cache = ScheduleCache(path, capacity=64)
        entry, tier = cache.get("old")
        assert entry == {"value": 1} and tier == "store"
        assert cache.corrupt_records == 0

    def test_torn_tail_is_truncated_and_appends_stay_clean(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=3)
        whole = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"key": "torn", "entry": {"va')  # killed mid-append
        cache = ScheduleCache(path, capacity=64)
        assert cache.recovered_tail_bytes > 0
        assert path.stat().st_size == whole  # the fragment is gone
        for i in range(3):
            assert cache.get(f"k{i}")[0]["value"] == i
        # a fresh append after recovery must not merge into the fragment
        cache.put("after", {"value": 99})
        reopened = ScheduleCache(path, capacity=64)
        assert reopened.get("after")[0]["value"] == 99
        assert reopened.corrupt_records == 0

    def test_bit_rot_detected_on_store_read(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=4)
        cache = ScheduleCache(path, capacity=64)  # index built, LRU empty
        raw = path.read_bytes()
        # same-length in-place mangle of k1's entry, after the index load
        rotted = raw.replace(b'"value": 1', b'"value": 8')
        assert len(rotted) == len(raw)
        path.write_bytes(rotted)
        assert cache.get("k1") is None
        assert cache.corrupt_records == 1
        assert cache.get("k1", count_miss=False) is None  # slot forgotten
        assert cache.get("k0")[0]["value"] == 0

    def test_injected_write_faults_trip_the_disk_tier(self, tmp_path):
        inj = FaultInjector(
            FaultPlan([FaultRule(site="disk.write", rate=1.0)], seed=0)
        )
        cache = ScheduleCache(tmp_path / "store.jsonl", capacity=64)
        cache.bind_faults(inj)
        threshold = cache.breaker.failure_threshold
        for i in range(threshold):
            cache.put(f"k{i}", {"value": i})
        assert cache.breaker.state == "open"
        assert cache.degraded()
        assert inj.fired["disk.write"] == threshold
        # tripped: puts stay LRU-only instead of erroring...
        cache.put("extra", {"value": 42})
        assert inj.fired["disk.write"] == threshold  # disk untouched
        assert cache.get("extra")[0]["value"] == 42  # ...and still served
        assert not (tmp_path / "store.jsonl").exists()

    def test_injected_read_faults_degrade_to_misses(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=8)
        inj = FaultInjector(
            FaultPlan([FaultRule(site="disk.read", rate=1.0)], seed=0)
        )
        cache = ScheduleCache(path, capacity=64)
        cache.bind_faults(inj)
        threshold = cache.breaker.failure_threshold
        for i in range(threshold):
            assert cache.get(f"k{i}") is None  # failed read -> miss
        assert cache.breaker.state == "open"
        assert cache.get(f"k{threshold}") is None  # skipped, not attempted
        assert inj.fired["disk.read"] == threshold

    def test_breaker_recovery_rejoins_the_disk_tier(self, tmp_path):
        path = tmp_path / "store.jsonl"
        fill_cache(path, n=4)
        clock = FakeClock()
        breaker = CircuitBreaker(name="disk", failure_threshold=2,
                                 cooldown_s=5.0, clock=clock)
        cache = ScheduleCache(path, capacity=64, breaker=breaker)
        breaker.record_failure()
        breaker.record_failure()
        assert cache.degraded() and cache.get("k0") is None
        clock.t += 5.0  # cooldown elapsed: next read is the probe
        entry, tier = cache.get("k0")
        assert entry["value"] == 0 and tier == "store"
        assert breaker.state == "closed" and not cache.degraded()


class _KilledMidWrite(BaseException):
    """Stands in for SIGKILL: not an OSError, so nothing catches it."""


class _KillingFile:
    """File proxy that stops persisting after ``budget`` bytes, then
    "dies" — exactly the on-disk state a kill at that offset leaves."""

    def __init__(self, fh, budget):
        self._fh = fh
        self._budget = budget

    def write(self, data):
        room = self._budget - self._fh.tell()
        if room < len(data):
            self._fh.write(data[:max(0, room)])
            self._fh.flush()
            raise _KilledMidWrite
        return self._fh.write(data)

    def flush(self):
        self._fh.flush()

    def fileno(self):
        return self._fh.fileno()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._fh.close()


class TestInterruptedCompaction:
    def build_store(self, path):
        """Two generations of the same 8 keys: half the file is dead
        bytes, compaction has real work to do, and ``expected`` is the
        committed (latest) value per key."""
        expected = {}
        with open(path, "wb") as fh:
            for gen in range(2):
                for i in range(8):
                    key, entry = f"k{i}", {"value": gen * 100 + i,
                                           "pad": "y" * 10}
                    fh.write(json.dumps(
                        {"crc": cache_record_crc(key, entry),
                         "entry": entry, "key": key},
                        sort_keys=True,
                    ).encode() + b"\n")
                    expected[key] = entry["value"]
        return expected

    def test_kill_at_randomized_offsets_preserves_every_key(self, tmp_path):
        src = tmp_path / "seed.jsonl"
        expected = self.build_store(src)
        live_bytes = sum(
            length for _, length in ScheduleCache(src, capacity=64)
            ._disk.values()
        )
        rng = random.Random(1234)
        offsets = {0, 1, live_bytes - 1} | {
            rng.randrange(live_bytes) for _ in range(6)
        }
        import builtins

        real_open = builtins.open
        for n, offset in enumerate(sorted(offsets)):
            store = tmp_path / f"run{n}" / "store.jsonl"
            store.parent.mkdir()
            shutil.copy(src, store)
            cache = ScheduleCache(store, capacity=64)

            def killing_open(file, mode="r", *args, **kwargs):
                fh = real_open(file, mode, *args, **kwargs)
                if str(file).endswith(".compact") and "w" in mode:
                    return _KillingFile(fh, offset)
                return fh

            builtins.open = killing_open
            try:
                with pytest.raises(_KilledMidWrite):
                    cache.compact()
            finally:
                builtins.open = real_open
            tmp = store.with_name("store.jsonl.compact")
            assert tmp.exists()  # the kill left a partial temp behind
            assert tmp.stat().st_size <= offset
            # recovery: the temp is swept, the original store is whole
            recovered = ScheduleCache(store, capacity=64)
            assert not tmp.exists()
            assert recovered.corrupt_records == 0
            for key, value in expected.items():
                entry, _ = recovered.get(key)
                assert entry["value"] == value

    def test_completed_compaction_survives_reopen(self, tmp_path):
        store = tmp_path / "store.jsonl"
        expected = self.build_store(store)
        cache = ScheduleCache(store, capacity=64)
        before = store.stat().st_size
        assert cache.compact() > 0
        assert store.stat().st_size < before
        reopened = ScheduleCache(store, capacity=64)
        for key, value in expected.items():
            assert reopened.get(key)[0]["value"] == value

    def test_kill_mid_append_at_randomized_offsets(self, tmp_path):
        src = tmp_path / "seed.jsonl"
        self.build_store(src)
        raw = src.read_bytes()
        boundaries = []  # (end offset, keys committed by then)
        committed = {}
        pos = 0
        for line in raw.splitlines(keepends=True):
            doc = json.loads(line)
            pos += len(line)
            committed[doc["key"]] = doc["entry"]["value"]
            boundaries.append((pos, dict(committed)))
        rng = random.Random(99)
        offsets = {1, len(raw) - 1} | {
            rng.randrange(1, len(raw)) for _ in range(6)
        }
        for n, offset in enumerate(sorted(offsets)):
            store = tmp_path / f"cut{n}" / "store.jsonl"
            store.parent.mkdir()
            store.write_bytes(raw[:offset])
            expected = {}
            for end, snapshot in boundaries:
                if end <= offset:
                    expected = snapshot
            cache = ScheduleCache(store, capacity=64)
            assert cache.corrupt_records == 0
            for key, value in expected.items():
                assert cache.get(key)[0]["value"] == value
            for key in set(committed) - set(expected):
                assert cache.get(key) is None


# ----------------------------------------------------------------------
# campaign store checksums
# ----------------------------------------------------------------------
class TestCampaignStoreCrc:
    def test_round_trip_stamps_and_verifies(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        docs = [{"cell": "a", "makespan": 10}, {"cell": "b", "makespan": 20}]
        append_jsonl(path, docs)
        for line in path.read_text().splitlines():
            doc = json.loads(line)
            assert doc["crc"] == campaign_record_crc(doc)
        assert list(read_jsonl(path)) == docs

    def test_corrupt_record_skipped_on_read(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        append_jsonl(path, [{"cell": "a", "makespan": 10},
                            {"cell": "b", "makespan": 20}])
        mangled = path.read_text().replace('"makespan": 10', '"makespan": 11')
        path.write_text(mangled)
        assert list(read_jsonl(path)) == [{"cell": "b", "makespan": 20}]

    def test_legacy_records_without_crc_accepted(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        path.write_text(json.dumps({"cell": "old", "makespan": 5}) + "\n")
        assert list(read_jsonl(path)) == [{"cell": "old", "makespan": 5}]


# ----------------------------------------------------------------------
# supervised portfolio pool
# ----------------------------------------------------------------------
GRAPH_DOC = graph_to_dict(random_canonical_graph("chain", 6, seed=0))


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestPortfolioPool:
    def test_crash_is_detected_and_worker_respawned(self):
        with PortfolioPool(workers=2, respawn_backoff_s=0.01) as pool:
            task = pool.submit(GRAPH_DOC, 2, "lts", fault={"kind": "crash"})
            with pytest.raises(WorkerCrashError):
                pool.wait(task, None)
            assert pool.crashes == 1
            assert wait_until(lambda: pool.snapshot()["alive"] == 2)
            assert pool.respawns >= 1
            # the pool keeps serving after the respawn
            healthy = pool.submit(GRAPH_DOC, 2, "lts")
            result = pool.wait(healthy, None)
            assert result["name"] == "lts" and result["makespan"] > 0

    def test_hung_candidate_is_cut_off(self):
        with PortfolioPool(workers=2, hang_timeout_s=0.3,
                           respawn_backoff_s=0.01) as pool:
            task = pool.submit(
                GRAPH_DOC, 2, "lts", fault={"kind": "hang", "seconds": 30.0}
            )
            with pytest.raises(WorkerHangError):
                pool.wait(task, None)
            assert pool.hangs == 1
            assert wait_until(lambda: pool.snapshot()["alive"] == 2)

    def test_poison_task_quarantined_after_repeated_crashes(self):
        with PortfolioPool(workers=2, quarantine_after=2,
                           respawn_backoff_s=0.01) as pool:
            for _ in range(2):
                task = pool.submit(GRAPH_DOC, 2, "lts", task_key="poison",
                                   fault={"kind": "crash"})
                with pytest.raises(WorkerCrashError):
                    pool.wait(task, None)
                wait_until(lambda: pool.snapshot()["alive"] == 2)
            with pytest.raises(QuarantinedError):
                pool.submit(GRAPH_DOC, 2, "lts", task_key="poison")
            assert pool.snapshot()["quarantined"] == ["poison"]
            # other keys are unaffected by the quarantine
            ok = pool.submit(GRAPH_DOC, 2, "lts", task_key="fine")
            assert pool.wait(ok, None)["makespan"] > 0

    def test_faulted_race_still_returns_the_right_answer(self):
        g = random_canonical_graph("fft", 8, seed=1)
        baseline = run_portfolio(g, 4)
        inj = FaultInjector(
            FaultPlan([FaultRule(site="worker.crash", rate=1.0, count=1)],
                      seed=0)
        )
        with PortfolioPool(workers=2, respawn_backoff_s=0.01) as pool:
            faulted = run_portfolio(g, 4, pool=pool, faults=inj,
                                    task_key="t")
            assert pool.crashes == 1
        # the crashed candidate was recomputed in-process: same winner
        assert faulted.winner.name == baseline.winner.name
        assert faulted.winner.makespan == baseline.winner.makespan
        assert faulted.schedule_doc() == baseline.schedule_doc()

    def test_snapshot_shape(self):
        with PortfolioPool(workers=2) as pool:
            snap = pool.snapshot()
        assert snap["workers"] == 2
        assert {"alive", "closed", "respawns", "crashes", "hangs",
                "quarantined"} <= set(snap)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def setup_method(self):
        self.service = ScheduleService(cache=ScheduleCache(None, capacity=16))

    def test_expired_deadline_refused_with_retryable_marker(self):
        response = self.service.handle(schedule_doc(deadline_ms=1e-6))
        assert response["ok"] is False
        assert response["deadline_exceeded"] is True
        assert response["retryable"] is True

    def test_generous_deadline_is_served(self):
        response = self.service.handle(schedule_doc(deadline_ms=60_000))
        assert response["ok"] is True and response["makespan"] > 0

    def test_simulate_honours_deadlines_too(self):
        doc = {
            "op": "simulate", "graph": GRAPH_DOC, "num_pes": 2,
            "deadline_ms": 1e-6,
        }
        response = self.service.handle(doc)
        assert response["ok"] is False and response["deadline_exceeded"]

    def test_nonpositive_deadline_refused_before_any_work(self):
        response = self.service.handle(schedule_doc(deadline_ms=0))
        assert response["ok"] is False and response["deadline_exceeded"]

    def test_deadline_refusals_counted(self):
        before = self.service.telemetry.registry.counter(
            "service.deadline_refused",
            "requests refused because their deadline expired",
        ).value
        self.service.handle(schedule_doc(deadline_ms=1e-6))
        after = self.service.telemetry.registry.counter(
            "service.deadline_refused",
            "requests refused because their deadline expired",
        ).value
        assert after == before + 1


# ----------------------------------------------------------------------
# wire-level recovery: reconnects, partial replies, retries, shed
# ----------------------------------------------------------------------
def serve_with_plan(rules, seed=1, **service_kw):
    faults = FaultInjector(FaultPlan(rules, seed=seed))
    service = ScheduleService(
        cache=ScheduleCache(None, capacity=64), faults=faults, **service_kw
    )
    return ScheduleServer(service, port=0, workers=2), faults


class TestClientRecovery:
    def test_dropped_connection_is_transparently_replayed(self):
        server, faults = serve_with_plan(
            [FaultRule(site="conn.drop", rate=1.0, count=1)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                assert client.ping()["ok"]  # survived the injected drop
                assert client.reconnects == 1
                assert faults.fired["conn.drop"] == 1
                assert client.ping()["ok"]  # plan drained: clean traffic
                assert client.reconnects == 1

    def test_partial_reply_is_detected_and_replayed(self):
        server, faults = serve_with_plan(
            [FaultRule(site="conn.partial", rate=1.0, count=1)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                response = client.schedule(
                    random_canonical_graph("chain", 6, seed=0), 4
                )
                assert response["ok"] and response["makespan"] > 0
                assert client.reconnects == 1
                assert faults.fired["conn.partial"] == 1

    def test_two_consecutive_failures_surface(self):
        server, _ = serve_with_plan(
            [FaultRule(site="conn.drop", rate=1.0, count=2)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                with pytest.raises(ConnectionError, match="after reconnect"):
                    client.ping()

    def test_request_with_retry_survives_repeated_drops(self):
        server, _ = serve_with_plan(
            [FaultRule(site="conn.drop", rate=1.0, count=2)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                response = client.request_with_retry(
                    {"op": "ping"}, retries=3, backoff_s=0.01,
                    rng=random.Random(0),
                )
                assert response["ok"]
                assert client.retries >= 1

    def test_nonretryable_error_propagates_immediately(self, tmp_path):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        with ScheduleServer(service, port=0, workers=2) as server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                with pytest.raises(ServiceError) as info:
                    client.request_with_retry(
                        {"op": "no-such-op"}, retries=3, backoff_s=0.01
                    )
                assert not info.value.retryable
                assert client.retries == 0


class TestShedAndDrain:
    def test_overload_sheds_compute_with_retry_hint(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        with ScheduleServer(service, port=0, workers=2) as server:
            held = 0
            while server._slow_slots.acquire(blocking=False):
                held += 1
            try:
                with ServiceClient(port=server.port, timeout=5.0) as client:
                    assert client.ping()["ok"]  # control ops stay inline
                    response = client.request_raw(
                        json.dumps(schedule_doc()).encode()
                    )
                    assert response["ok"] is False
                    assert response["shed"] is True
                    assert response["retryable"] is True
                    assert response["retry_after_ms"] == 200
            finally:
                for _ in range(held):
                    server._slow_slots.release()
            with ServiceClient(port=server.port, timeout=10.0) as client:
                assert client.schedule(
                    random_canonical_graph("chain", 6, seed=0), 4
                )["ok"]

    def test_retry_rides_out_a_shed_window(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        with ScheduleServer(service, port=0, workers=2) as server:
            held = 0
            while server._slow_slots.acquire(blocking=False):
                held += 1

            def lift():
                for _ in range(held):
                    server._slow_slots.release()

            timer = threading.Timer(0.15, lift)
            timer.start()
            try:
                with ServiceClient(port=server.port, timeout=10.0) as client:
                    response = client.request_with_retry(
                        schedule_doc(), retries=5, backoff_s=0.05,
                        rng=random.Random(0),
                    )
                    assert response["ok"] and client.retries >= 1
            finally:
                timer.join()

    def test_draining_service_refuses_compute_retryably(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        service.draining = True
        response = service.handle(schedule_doc())
        assert response["ok"] is False
        assert response["draining"] is True and response["retryable"] is True
        assert service.handle({"op": "ping"})["ok"]  # control ops still fine
        assert service.health()["status"] == "draining"

    def test_drain_stops_the_server_and_closes_the_listener(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        server = ScheduleServer(service, port=0, workers=2).start()
        port = server.port
        with ServiceClient(port=port, timeout=5.0) as client:
            assert client.ping()["ok"]
            server.drain(grace_s=2.0)
            assert server.draining
            server.join()
        with pytest.raises(OSError):
            ServiceClient(port=port, timeout=0.5)

    def test_drain_is_idempotent(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        server = ScheduleServer(service, port=0, workers=2).start()
        server.drain(grace_s=1.0)
        server.drain(grace_s=1.0)  # second call is a no-op
        server.join()


class TestHealth:
    def make_service(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker(name="disk", failure_threshold=2,
                                 cooldown_s=5.0, clock=clock)
        cache = ScheduleCache(tmp_path / "store.jsonl", capacity=16,
                              breaker=breaker)
        return clock, breaker, ScheduleService(cache=cache)

    def test_ok_by_default(self, tmp_path):
        _, _, service = self.make_service(tmp_path)
        doc = service.health()
        assert doc["ok"] is True and doc["status"] == "ok"
        assert doc["tripped"] == []
        assert doc["breakers"][0]["name"] == "disk"

    def test_open_breaker_degrades(self, tmp_path):
        _, breaker, service = self.make_service(tmp_path)
        breaker.force_open()
        doc = service.health()
        assert doc["status"] == "degraded"
        assert doc["tripped"] == ["disk"]

    def test_half_open_counts_as_ok(self, tmp_path):
        # a half-open breaker is waiting for a probe; without disk
        # traffic that probe may never run, and the server serves fine
        clock, breaker, service = self.make_service(tmp_path)
        breaker.force_open()
        clock.t += 5.0
        assert breaker.state == "half_open"
        doc = service.health()
        assert doc["ok"] is True and doc["status"] == "ok"

    def test_health_over_the_wire_with_fault_snapshot(self):
        server, _ = serve_with_plan(
            [FaultRule(site="compute.slow", rate=1.0, count=1,
                       seconds=0.001)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                doc = client.health()
                assert doc["ok"] is True and doc["status"] == "ok"
                assert doc["faults"]["active"] is True
                client.schedule(random_canonical_graph("chain", 6, seed=0), 4)
                doc = client.health()
                assert doc["faults"]["fired"] == {"compute.slow": 1}
                assert doc["faults"]["active"] is False

    def test_stats_report_health_and_fault_state(self):
        server, _ = serve_with_plan(
            [FaultRule(site="conn.drop", rate=0.0)]
        )
        with server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                stats = client.stats()
                assert stats["health"] == "ok"
                assert stats["draining"] is False
                assert stats["faults"]["seed"] == 1


# ----------------------------------------------------------------------
# accept-path fd hygiene
# ----------------------------------------------------------------------
def open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs procfs")
class TestFdStability:
    def test_fd_count_stable_across_100_failed_connects(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        with ScheduleServer(service, port=0, workers=2) as server:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                assert client.ping()["ok"]
                baseline = open_fds()
                for i in range(100):
                    sock = socket.create_connection(
                        ("127.0.0.1", server.port), timeout=5.0
                    )
                    if i % 2:
                        sock.send(b'{"op": "ping"')  # die mid-request
                    # RST instead of FIN: the hard-failure close path
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    sock.close()
                assert wait_until(lambda: open_fds() <= baseline + 4,
                                  timeout=5.0), (
                    f"fd leak: {open_fds()} open vs baseline {baseline}"
                )
                assert client.ping()["ok"]  # the server is unscathed


# ----------------------------------------------------------------------
# in-process chaos smoke: faulted server + retrying loadgen
# ----------------------------------------------------------------------
class TestChaosSmoke:
    def test_retrying_loadgen_survives_a_fault_plan(self, tmp_path):
        faults = FaultInjector(FaultPlan([
            FaultRule(site="conn.drop", rate=0.2, count=3, after=4),
            FaultRule(site="conn.partial", rate=0.2, count=3, after=4),
            FaultRule(site="disk.write", rate=0.5, count=3),
            FaultRule(site="compute.slow", rate=0.5, count=2, seconds=0.005),
        ], seed=7))
        cache = ScheduleCache(tmp_path / "store.jsonl", capacity=256)
        cache.breaker.cooldown_s = 0.2  # recover fast inside the test
        service = ScheduleService(cache=cache, faults=faults)
        with ScheduleServer(service, port=0, workers=2) as server:
            report = run_loadgen(
                port=server.port, requests=80, workers=2, pool=6,
                retries=2, seed=0,
            )
            # a faulted server may refuse or slow down, but never lie
            assert report.incorrect == 0
            assert report.requests > 0
            assert report.error_rate <= 0.02
            assert not faults.active()  # every bounded rule drained

            def healthy():
                return service.health()["status"] == "ok"

            assert wait_until(healthy, timeout=5.0)
