"""Unit tests for the non-streaming baseline (NSTR-SCH)."""

import pytest

from repro import CanonicalGraph
from repro.baselines import condensed_dependencies, schedule_nonstreaming
from repro.core.levels import critical_path_length, total_work
from repro.graphs import random_canonical_graph

from conftest import build_diamond, build_elementwise_chain


class TestCondensedDependencies:
    def test_direct_edges(self, diamond):
        deps = condensed_dependencies(diamond)
        assert deps[3] == {1, 2}
        assert deps[0] == set()

    def test_passes_through_passives(self):
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_buffer("B", 8, 8)
        g.add_task("b", 8, 8)
        g.add_edge("a", "B")
        g.add_edge("B", "b")
        deps = condensed_dependencies(g)
        assert deps["b"] == {"a"}

    def test_source_contributes_nothing(self):
        g = CanonicalGraph()
        g.add_source("s", 8)
        g.add_task("a", 8, 8)
        g.add_edge("s", "a")
        assert condensed_dependencies(g)["a"] == set()

    def test_chained_passives(self):
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_buffer("B1", 8, 8)
        g.add_buffer("B2", 8, 8)
        g.add_task("b", 8, 8)
        for e in [("a", "B1"), ("B1", "B2"), ("B2", "b")]:
            g.add_edge(*e)
        assert condensed_dependencies(g)["b"] == {"a"}


class TestScheduleProperties:
    def test_chain_is_sequential(self):
        g = build_elementwise_chain(5, 16)
        s = schedule_nonstreaming(g, 4)
        assert s.makespan == 5 * 16
        s.validate()

    def test_diamond_parallel_branches(self):
        g = build_diamond(16)
        s = schedule_nonstreaming(g, 2)
        assert s.makespan == 3 * 16  # branches overlap
        s.validate()

    def test_single_pe_equals_total_work(self):
        for seed in range(3):
            g = random_canonical_graph("gaussian", 6, seed=seed)
            s = schedule_nonstreaming(g, 1)
            assert s.makespan == total_work(g)

    def test_makespan_lower_bounds(self):
        for seed in range(5):
            g = random_canonical_graph("fft", 8, seed=seed)
            for p in (2, 4, 8):
                s = schedule_nonstreaming(g, p)
                assert s.makespan >= critical_path_length(g)
                assert s.makespan >= total_work(g) / p
                s.validate()

    def test_more_pes_never_worse(self):
        g = random_canonical_graph("cholesky", 6, seed=1)
        spans = [schedule_nonstreaming(g, p).makespan for p in (1, 2, 4, 8, 16)]
        assert spans == sorted(spans, reverse=True)

    def test_insertion_fills_gaps(self):
        """A short independent task should slot into an idle gap."""
        g = CanonicalGraph()
        g.add_task("long1", 100, 100)
        g.add_task("long2", 100, 100)
        g.add_edge("long1", "long2")
        g.add_task("tiny", 10, 10)
        s = schedule_nonstreaming(g, 1)
        assert s.makespan == 210
        s.validate()

    def test_invalid_pes(self, ew_chain):
        with pytest.raises(ValueError):
            schedule_nonstreaming(ew_chain, 0)

    def test_busy_time_is_total_work(self, ew_chain):
        s = schedule_nonstreaming(ew_chain, 4)
        assert s.busy_time() == total_work(ew_chain)

    def test_placements_cover_all_tasks(self):
        g = random_canonical_graph("gaussian", 8, seed=0)
        s = schedule_nonstreaming(g, 8)
        assert set(s.placements) == set(g.computational_nodes())
