"""Unit tests for the mesh NoC model and greedy placement."""

import pytest

from repro import schedule_streaming
from repro.graphs import random_canonical_graph
from repro.placement import Mesh, mesh_for, place_schedule, random_placement

from conftest import build_elementwise_chain


class TestMesh:
    def test_coords_round_trip(self):
        m = Mesh(3, 4)
        for pe in range(m.size):
            r, c = m.coords(pe)
            assert m.pe_at(r, c) == pe

    def test_manhattan_distance(self):
        m = Mesh(4, 4)
        assert m.distance(0, 0) == 0
        assert m.distance(m.pe_at(0, 0), m.pe_at(3, 3)) == 6
        assert m.distance(m.pe_at(1, 2), m.pe_at(2, 0)) == 3

    def test_neighbors_interior_and_corner(self):
        m = Mesh(3, 3)
        assert len(list(m.neighbors(m.pe_at(1, 1)))) == 4
        assert len(list(m.neighbors(m.pe_at(0, 0)))) == 2

    def test_xy_route_length(self):
        m = Mesh(4, 4)
        a, b = m.pe_at(0, 0), m.pe_at(2, 3)
        route = m.route(a, b)
        assert route[0] == a and route[-1] == b
        assert len(route) == m.distance(a, b) + 1
        # every step moves to an adjacent PE
        for x, y in zip(route, route[1:]):
            assert m.distance(x, y) == 1

    def test_mesh_for_exact_squares(self):
        assert (mesh_for(16).rows, mesh_for(16).cols) == (4, 4)
        m = mesh_for(12)
        assert m.size >= 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(2, 2).coords(5)


class TestPlacement:
    def test_chain_placed_contiguously(self):
        """A streaming chain should sit on adjacent PEs: one hop/edge."""
        g = build_elementwise_chain(6, 16)
        s = schedule_streaming(g, 9, "rlx")
        placement = place_schedule(s, Mesh(3, 3))
        per_edge_hops = placement.weighted_hops() / (5 * 16)
        assert per_edge_hops == pytest.approx(1.0)

    def test_placement_is_valid(self):
        for seed in range(3):
            g = random_canonical_graph("gaussian", 8, seed=seed)
            s = schedule_streaming(g, 16, "rlx")
            placement = place_schedule(s)
            placement.validate()
            assert set(placement.pe_of) == set(g.computational_nodes())

    def test_greedy_beats_random(self):
        """The centroid placer must generate less NoC traffic than a
        random placement on pipelining-heavy graphs."""
        wins = 0
        for seed in range(5):
            g = random_canonical_graph("fft", 16, seed=seed)
            s = schedule_streaming(g, 64, "rlx")
            greedy = place_schedule(s).weighted_hops()
            rnd = random_placement(s, seed=seed).weighted_hops()
            if greedy <= rnd:
                wins += 1
        assert wins >= 4

    def test_link_load_positive_when_streaming(self):
        g = build_elementwise_chain(4, 8)
        s = schedule_streaming(g, 4, "rlx")
        placement = place_schedule(s)
        assert placement.max_link_load() >= 8

    def test_mesh_too_small_rejected(self):
        g = build_elementwise_chain(6, 8)
        s = schedule_streaming(g, 6, "rlx")
        with pytest.raises(ValueError):
            place_schedule(s, Mesh(2, 2))
