"""Tests for the sharded serving tier: rendezvous routing and cache
affinity, shard supervision (crash detection, respawn with backoff,
failover replay), the shared JSONL store with cross-shard single-flight
(``StoreKeyLock`` + ``ScheduleCache.refresh``), the ``shard.kill``
fault site, and the zero-downtime rolling restart."""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.core import graph_to_dict
from repro.graphs import random_canonical_graph
from repro.service import (
    ScheduleCache,
    ScheduleService,
    ServiceClient,
    ShardConfig,
    ShardRouter,
    StoreKeyLock,
)
from repro.service.faults import FaultInjector, FaultPlan


def schedule_doc(topology="chain", size=6, seed=0, num_pes=4, **extra):
    doc = {
        "op": "schedule",
        "graph": graph_to_dict(random_canonical_graph(topology, size, seed=seed)),
        "num_pes": num_pes,
    }
    doc.update(extra)
    return doc


def make_router(tmp_path, shards=2, store=True, **kwargs):
    config = kwargs.pop("config", None)
    if config is None:
        config = ShardConfig(
            workers=2,
            store=str(tmp_path / "store.jsonl") if store else None,
            drain_grace=5.0,
        )
    router = ShardRouter(shards=shards, config=config, **kwargs)
    router.start()
    assert router.wait_ready(30.0), [s.row() for s in router.shards]
    return router


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_existing_client_works_unchanged(self, tmp_path):
        router = make_router(tmp_path)
        try:
            with ServiceClient(port=router.port) as client:
                pong = client.ping()
                assert pong["ok"] and pong["router"] is True
                response = client.request_with_retry(schedule_doc())
                assert response["ok"] and response["winner"]
                assert response["cached"] is False
        finally:
            router.stop()

    def test_repeats_of_one_graph_keep_one_shard_hot(self, tmp_path):
        router = make_router(tmp_path)
        try:
            with ServiceClient(port=router.port) as client:
                doc = schedule_doc(seed=3)
                first = client.request_with_retry(doc)
                assert first["cached"] is False
                for _ in range(4):
                    again = client.request_with_retry(doc)
                    # LRU tier of the home shard, never a recompute:
                    # the rendezvous hash pinned the graph to one shard
                    assert again["cached"] == "lru"
                stats = client.stats()
                assert stats["computed"] == 1
        finally:
            router.stop()

    def test_distinct_graphs_spread_over_shards(self, tmp_path):
        router = make_router(tmp_path, shards=2)
        try:
            with ServiceClient(port=router.port) as client:
                for seed in range(10):
                    client.request_with_retry(schedule_doc(seed=seed, size=4))
                stats = client.stats()
            per_shard = [row.get("served", 0) for row in stats["shards"]]
            assert sum(per_shard) >= 10
            assert all(count > 0 for count in per_shard), per_shard
        finally:
            router.stop()

    def test_router_answers_control_ops_with_aggregates(self, tmp_path):
        router = make_router(tmp_path)
        try:
            with ServiceClient(port=router.port) as client:
                client.request_with_retry(schedule_doc())
                stats = client.stats()
                assert stats["router"] is True
                assert len(stats["shards"]) == 2
                assert {"failovers", "rerouted", "shard_crashes", "respawns",
                        "reloads"} <= set(stats["router_counters"])
                # "ok" needs one health-poll round trip per shard first
                assert wait_until(
                    lambda: client.health()["status"] == "ok"
                )
                health = client.health()
                assert [row["state"] for row in health["shards"]] == ["up", "up"]
                metrics = client.metrics()
                assert "router_requests" in metrics["text"]
        finally:
            router.stop()

    def test_bad_json_answered_without_a_shard(self, tmp_path):
        router = make_router(tmp_path, shards=1, store=False)
        try:
            with socket.create_connection(("127.0.0.1", router.port),
                                          timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
            doc = json.loads(line)
            assert doc["ok"] is False and "bad request" in doc["error"]
        finally:
            router.stop()


# ----------------------------------------------------------------------
# supervision: crash detection, respawn, failover
# ----------------------------------------------------------------------
class TestSupervision:
    def test_sigkilled_shard_is_respawned_with_fresh_pid(self, tmp_path):
        router = make_router(tmp_path, store=False)
        try:
            victim = router.shards[0]
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)
            assert wait_until(lambda: victim.crashes == 1)
            assert wait_until(
                lambda: victim.state == "up" and victim.pid != old_pid
            )
            kinds = [e["kind"] for e in router.telemetry.flight.last(20)]
            assert "shard_crash" in kinds and "respawn" in kinds
            assert router._c_crashes.value == 1
            assert router._c_respawns.value == 1
        finally:
            router.stop()

    def test_repeated_crashes_back_off_exponentially(self, tmp_path):
        router = make_router(tmp_path, shards=1, store=False,
                             respawn_backoff_s=0.05, health_interval_s=30.0)
        try:
            victim = router.shards[0]
            for expected in (1, 2, 3):
                pid = victim.pid
                os.kill(pid, signal.SIGKILL)
                assert wait_until(lambda: victim.crashes == expected)
                assert wait_until(lambda: victim.state == "up")
            # no health poll ran (interval 30s), so nothing reset the
            # doubling: 0.05 -> 0.1 -> 0.2 -> 0.4 pending
            assert victim.backoff_s == pytest.approx(0.4)
        finally:
            router.stop()

    def test_healthy_round_trip_resets_the_backoff(self, tmp_path):
        router = make_router(tmp_path, shards=1, store=False,
                             respawn_backoff_s=0.05, health_interval_s=0.05)
        try:
            victim = router.shards[0]
            os.kill(victim.pid, signal.SIGKILL)
            assert wait_until(lambda: victim.crashes == 1)
            assert wait_until(
                lambda: victim.backoff_s == pytest.approx(0.05), timeout=15.0
            )
        finally:
            router.stop()

    def test_request_fails_over_when_home_shard_dies(self, tmp_path):
        router = make_router(tmp_path, shards=2,
                             respawn_backoff_s=5.0)  # keep the victim down
        try:
            with ServiceClient(port=router.port) as client:
                doc = schedule_doc(seed=1)
                first = client.request_with_retry(doc)
                assert first["ok"]
                home = router._rendezvous(
                    json.dumps(doc).encode() + b"\n", doc
                )[0]
                victim = router.shards[home]
                os.kill(victim.pid, signal.SIGKILL)
                wait_until(lambda: victim.state != "up", timeout=5.0)
                # the home shard is down and stays down (long backoff):
                # the sibling must answer, correctly, from the shared store
                again = client.request_with_retry(doc)
                assert again["ok"]
                assert again["winner"] == first["winner"]
                assert again["makespan"] == first["makespan"]
            assert router._c_rerouted.value >= 1
        finally:
            router.stop()

    def test_no_shard_available_is_a_retryable_refusal(self, tmp_path):
        router = make_router(tmp_path, shards=1, store=False,
                             respawn_backoff_s=30.0)
        router.NO_SHARD_GRACE_S = 0.2
        try:
            os.kill(router.shards[0].pid, signal.SIGKILL)
            assert wait_until(lambda: router.shards[0].state != "up")
            with ServiceClient(port=router.port) as client:
                response = client.request_raw(
                    json.dumps(schedule_doc()).encode() + b"\n"
                )
            assert response["ok"] is False
            assert response["retryable"] is True
            assert "no shard available" in response["error"]
        finally:
            router.stop()


# ----------------------------------------------------------------------
# the shard.kill fault site
# ----------------------------------------------------------------------
class TestShardKillFault:
    def test_plan_accepts_the_site_and_kills_deterministically(self, tmp_path):
        plan = FaultPlan.from_dict(
            {"seed": 11, "rules": [{"site": "shard.kill", "rate": 1.0,
                                    "count": 1, "after": 2}]}
        )
        router = make_router(
            tmp_path, shards=2, faults=FaultInjector(plan),
        )
        try:
            pids = [s.pid for s in router.shards]
            with ServiceClient(port=router.port) as client:
                for seed in range(4):
                    response = client.request_with_retry(
                        schedule_doc(seed=seed, size=4), retries=4
                    )
                    assert response["ok"]
            assert wait_until(
                lambda: sum(s.crashes for s in router.shards) == 1
            )
            assert wait_until(
                lambda: all(s.state == "up" for s in router.shards)
            )
            assert [s.pid for s in router.shards] != pids
            kinds = [e["kind"] for e in router.telemetry.flight.last(50)]
            assert "shard_kill" in kinds and "shard_crash" in kinds
        finally:
            router.stop()


# ----------------------------------------------------------------------
# shared store: refresh visibility and cross-shard single-flight
# ----------------------------------------------------------------------
class TestSharedStore:
    def test_refresh_sees_a_sibling_writers_appends(self, tmp_path):
        path = tmp_path / "store.jsonl"
        writer = ScheduleCache(path, capacity=8, shared=True)
        reader = ScheduleCache(path, capacity=8, shared=True)
        assert reader.get("k0") is None
        writer.put("k0", {"value": 0})
        assert reader.get("k0") is None  # not yet refreshed
        assert reader.refresh() == 1
        entry, tier = reader.get("k0")
        assert entry["value"] == 0 and tier == "store"

    def test_refresh_skips_torn_tail_without_truncating(self, tmp_path):
        path = tmp_path / "store.jsonl"
        writer = ScheduleCache(path, capacity=8, shared=True)
        reader = ScheduleCache(path, capacity=8, shared=True)
        writer.put("k0", {"value": 0})
        with open(path, "ab") as fh:
            fh.write(b'{"key": "torn')  # a sibling mid-append
        size_before = path.stat().st_size
        assert reader.refresh() == 1
        assert path.stat().st_size == size_before  # reader never truncates
        assert reader.get("k0") is not None

    def test_shared_mode_refuses_compaction(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(path, capacity=8, shared=True)
        for i in range(10):
            cache.put("hot", {"value": i})  # lots of dead bytes
        assert cache.compact() == 0
        assert cache.counters()["shared"] is True

    def test_keylock_excludes_across_instances(self, tmp_path):
        lock_a = StoreKeyLock(tmp_path / "store.jsonl")
        lock_b = StoreKeyLock(tmp_path / "store.jsonl")
        order = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock_a.acquire("k"):
                order.append("a-in")
                entered.set()
                release.wait(5.0)
                order.append("a-out")

        def waiter():
            entered.wait(5.0)
            with lock_b.acquire("k"):
                order.append("b-in")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        entered.wait(5.0)
        time.sleep(0.1)
        release.set()
        for t in threads:
            t.join(10.0)
        assert order == ["a-in", "a-out", "b-in"]

    def test_keylock_deadline_raises_timeout(self, tmp_path):
        lock = StoreKeyLock(tmp_path / "store.jsonl")
        other = StoreKeyLock(tmp_path / "store.jsonl")
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with lock.acquire("k"):
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(5.0)
            with pytest.raises(TimeoutError):
                with other.acquire("k", deadline=time.perf_counter() + 0.2):
                    pass  # pragma: no cover
        finally:
            release.set()
            thread.join(5.0)

    def test_leader_reprobes_store_after_taking_the_key_lock(self, tmp_path):
        # two services over one shared store: B computes and persists a
        # key; A, asked for the same graph cold, must answer from the
        # store inside its keylock bracket instead of recomputing
        path = tmp_path / "store.jsonl"
        doc = schedule_doc(seed=5)

        service_b = ScheduleService(
            cache=ScheduleCache(path, capacity=8, shared=True),
            keylock=StoreKeyLock(path),
        )
        response_b = service_b.handle(doc)
        assert response_b["ok"] and response_b["cached"] is False

        service_a = ScheduleService(
            cache=ScheduleCache(path, capacity=8, shared=True),
            keylock=StoreKeyLock(path),
        )
        # LRU and store index are empty in A (built before B's put was
        # visible? no — built fresh, but refresh() runs under the lock)
        service_a.cache._disk.clear()
        service_a.cache._file_bytes = 0
        response_a = service_a.handle(doc)
        assert response_a["ok"]
        assert response_a["cached"] == "store"
        assert response_a["winner"] == response_b["winner"]
        assert service_a.crossflight == 1


# ----------------------------------------------------------------------
# rolling restart
# ----------------------------------------------------------------------
class TestRollingRestart:
    def test_reload_replaces_every_shard_and_serves_throughout(self, tmp_path):
        router = make_router(tmp_path, shards=2)
        try:
            pids = [s.pid for s in router.shards]
            stop = threading.Event()
            outcomes = {"ok": 0, "incorrect": 0, "gave_up": 0}
            baseline = {}

            def load():
                with ServiceClient(port=router.port) as client:
                    i = 0
                    while not stop.is_set():
                        seed = i % 3
                        i += 1
                        try:
                            response = client.request_with_retry(
                                schedule_doc(seed=seed), retries=8
                            )
                        except Exception:
                            outcomes["gave_up"] += 1
                            continue
                        if not response.get("ok"):
                            outcomes["gave_up"] += 1
                        elif baseline.setdefault(
                            seed, response["makespan"]
                        ) != response["makespan"]:
                            outcomes["incorrect"] += 1
                        else:
                            outcomes["ok"] += 1

            thread = threading.Thread(target=load)
            thread.start()
            try:
                assert wait_until(lambda: outcomes["ok"] >= 3)
                started = router.reload()
                assert started["ok"]
                assert wait_until(
                    lambda: router._c_reloads.value == 1, timeout=60.0
                )
            finally:
                stop.set()
                thread.join(15.0)
            assert outcomes["incorrect"] == 0, outcomes
            assert outcomes["ok"] >= 3
            # every shard was replaced, and via the drain path, not a kill
            assert [s.pid for s in router.shards] != pids
            assert all(s.crashes == 0 for s in router.shards)
            assert all(s.restarts == 1 for s in router.shards)
            assert all(s.state == "up" for s in router.shards)
            kinds = [e["kind"] for e in router.telemetry.flight.last(50)]
            assert kinds.count("reload_shard") == 2
            assert "reload_done" in kinds
        finally:
            router.stop()

    def test_concurrent_reload_is_refused(self, tmp_path):
        router = make_router(tmp_path, shards=2, store=False)
        try:
            first = router.reload()
            assert first["ok"]
            second = router.reload()
            assert second["ok"] is False
            assert "in progress" in second["error"]
            assert wait_until(
                lambda: router._c_reloads.value == 1, timeout=60.0
            )
        finally:
            router.stop()
