"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    assert main(["generate", "fft", "8", "-o", str(path), "--seed", "1"]) == 0
    return path


class TestGenerateInfo:
    def test_generate_writes_valid_graph(self, graph_file):
        doc = json.loads(graph_file.read_text())
        assert doc["format"] == "canonical-task-graph"
        assert len(doc["nodes"]) == 39  # FFT with 8 points: 2N-1 + N log N

    def test_info_prints_stats(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "streaming depth" in out
        assert "T1" in out


class TestSchedule:
    def test_streaming_schedule_with_artifacts(self, graph_file, tmp_path, capsys):
        sched = tmp_path / "s.json"
        trace = tmp_path / "t.json"
        rc = main(
            [
                "schedule", str(graph_file), "-p", "8", "--scheduler", "rlx",
                "-o", str(sched), "--trace", str(trace), "--gantt",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "PE0" in out  # gantt printed
        assert json.loads(sched.read_text())["num_pes"] == 8
        assert isinstance(json.loads(trace.read_text()), list)

    def test_nonstreaming_schedule(self, graph_file, capsys):
        assert main(["schedule", str(graph_file), "-p", "4", "--scheduler", "nstr"]) == 0
        assert "NSTR-SCH" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_ok(self, graph_file, capsys):
        assert main(["simulate", str(graph_file), "-p", "8"]) == 0
        assert "error" in capsys.readouterr().out

    def test_simulate_greedy_pacing(self, graph_file):
        assert main(["simulate", str(graph_file), "-p", "8", "--pacing", "greedy"]) == 0

    def test_simulate_engines_agree(self, graph_file, capsys):
        assert main(["simulate", str(graph_file), "-p", "8",
                     "--engine", "indexed"]) == 0
        indexed_out = capsys.readouterr().out
        assert main(["simulate", str(graph_file), "-p", "8",
                     "--engine", "reference"]) == 0
        assert capsys.readouterr().out == indexed_out

    def test_simulate_policy_flag(self, graph_file):
        for policy in ("barrier", "pe", "dataflow"):
            assert main(["simulate", str(graph_file), "-p", "8",
                         "--policy", policy]) == 0

    def test_simulate_output_and_trace(self, graph_file, tmp_path, capsys):
        out = tmp_path / "sim.json"
        trace = tmp_path / "sim_trace.json"
        assert main(["simulate", str(graph_file), "-p", "8",
                     "-o", str(out), "--trace", str(trace)]) == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == "streaming-simulation"
        assert doc["makespan"] > 0 and not doc["deadlocked"]
        events = json.loads(trace.read_text())
        assert events and all(ev["ph"] == "X" for ev in events)
        assert "written to" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_topology_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "hypercube", "8", "-o", str(tmp_path / "x.json")]
            )
