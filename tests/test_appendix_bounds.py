"""Tests of the Appendix A theorems (Brent-style bounds).

Theorem A.1 (element-wise graphs): ``T_s_inf <= T_P <= T_1/P + T_s_inf``
for the level-order partitioning.  Theorem A.2 (element-wise +
downsampler graphs, work-ordered Algorithm 2):
``T_P <= T_1/P + T_s_inf + min(n-1, (x-1)(L-1))``.
"""

import math

import pytest

from repro import CanonicalGraph, schedule_streaming, streaming_depth, total_work
from repro.core.levels import node_levels
from repro.graphs import make_rng

from conftest import build_elementwise_chain


def random_ew_dag(seed: int, layers: int = 5, width: int = 4, k: int = 16):
    """Random layered element-wise DAG (equal volumes everywhere)."""
    rng = make_rng(seed)
    g = CanonicalGraph()
    prev: list = []
    for li in range(layers):
        cur = []
        for wi in range(int(rng.integers(1, width + 1))):
            name = (li, wi)
            g.add_task(name, k, k)
            if prev:
                for p in rng.choice(len(prev), size=min(2, len(prev)), replace=False):
                    g.add_edge(prev[int(p)], name)
            cur.append(name)
        prev = cur
    return g


def downsampler_tree(depth: int, k: int = 32):
    """Binary reduction tree: element-wise leaves + downsampler joins."""
    g = CanonicalGraph()
    leaves = [(0, i) for i in range(2**depth)]
    for leaf in leaves:
        g.add_task(leaf, k, k)
    level = leaves
    d = 1
    vol = k
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            node = (d, i // 2)
            g.add_task(node, vol, max(1, vol // 2))
            g.add_edge(level[i], node)
            g.add_edge(level[i + 1], node)
            nxt.append(node)
        vol = max(1, vol // 2)
        level = nxt
        d += 1
    return g


class TestTheoremA1:
    """Element-wise graphs under any of our partitioners."""

    @pytest.mark.parametrize("pes", [1, 2, 3, 4, 8])
    def test_chain_bound(self, pes):
        g = build_elementwise_chain(8, 32)
        t1 = total_work(g)
        depth = streaming_depth(g)
        tp = schedule_streaming(g, pes, "work", size_buffers=False).makespan
        assert tp <= math.ceil(t1 / pes) + depth
        assert tp >= depth or pes < 8

    @pytest.mark.parametrize("seed", range(5))
    def test_random_ew_dags(self, seed):
        g = random_ew_dag(seed)
        t1 = total_work(g)
        depth = streaming_depth(g)
        for pes in (1, 2, 4):
            tp = schedule_streaming(g, pes, "work", size_buffers=False).makespan
            # Theorem A.1 upper bound (+len(g) ceil slack, one per node)
            assert tp <= math.ceil(t1 / pes) + depth + len(g)


class TestTheoremA2:
    """Element-wise + downsampler graphs, work-ordered partitioning."""

    @pytest.mark.parametrize("depth_param", [2, 3, 4])
    def test_reduction_tree_bound(self, depth_param):
        g = downsampler_tree(depth_param)
        t1 = total_work(g)
        ts = streaming_depth(g)
        levels = node_levels(g)
        num_levels = max(levels.values())
        # x: max number of distinct works within one level
        by_level: dict = {}
        for v, lv in levels.items():
            by_level.setdefault(lv, set()).add(g.spec(v).work)
        x = max(len(works) for works in by_level.values())
        n = len(g)
        for pes in (2, 4, 8):
            tp = schedule_streaming(g, pes, "work", size_buffers=False).makespan
            slack = min(n - 1, (x - 1) * (float(num_levels) - 1))
            assert tp <= math.ceil(t1 / pes) + ts + slack + n  # + ceil slack

    def test_work_partition_orders_by_work(self):
        g = downsampler_tree(3)
        s = schedule_streaming(g, 4, "work", size_buffers=False)
        max_work_per_block = [
            max(g.spec(v).work for v in block) for block in s.partition.blocks
        ]
        assert max_work_per_block == sorted(max_work_per_block, reverse=True)
