"""Unit tests for the Section 7 comparison metrics."""

import pytest

from repro import (
    pe_utilization,
    schedule_streaming,
    slr,
    speedup,
    streaming_slr,
    summarize_schedule,
)
from repro.baselines import schedule_nonstreaming

from conftest import build_elementwise_chain


class TestSpeedup:
    def test_sequential_speedup_is_one(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 1, "rlx")
        assert speedup(g, s.makespan) == pytest.approx(1.0)

    def test_nonstreaming_chain_is_one_regardless_of_pes(self):
        """The paper's chain observation: buffered chains cannot scale."""
        g = build_elementwise_chain(8, 32)
        for p in (2, 4, 8):
            ns = schedule_nonstreaming(g, p)
            assert speedup(g, ns.makespan) == pytest.approx(1.0)

    def test_speedup_bounded_by_pes_approx(self):
        g = build_elementwise_chain(8, 64)
        for p in (2, 4, 8):
            s = schedule_streaming(g, p, "rlx")
            assert speedup(g, s.makespan) <= p + 1e-9

    def test_invalid_makespan(self):
        g = build_elementwise_chain(2, 4)
        with pytest.raises(ValueError):
            speedup(g, 0)


class TestSlr:
    def test_nstr_slr_one_on_chain(self):
        g = build_elementwise_chain(6, 16)
        ns = schedule_nonstreaming(g, 4)
        assert slr(g, ns.makespan) == pytest.approx(1.0)

    def test_sslr_one_at_full_parallelism(self):
        g = build_elementwise_chain(8, 32)
        s = schedule_streaming(g, 8, "rlx")
        assert streaming_slr(g, s.makespan) == pytest.approx(1.0)

    def test_sslr_decreases_with_pes(self):
        g = build_elementwise_chain(8, 32)
        ratios = [
            streaming_slr(g, schedule_streaming(g, p, "rlx").makespan)
            for p in (1, 2, 4, 8)
        ]
        assert ratios == sorted(ratios, reverse=True)


class TestUtilization:
    def test_perfect_utilization_single_pe(self):
        g = build_elementwise_chain(3, 16)
        s = schedule_streaming(g, 1, "rlx")
        util = pe_utilization(s.busy_time(), 1, s.makespan)
        assert util == pytest.approx(1.0)

    def test_bounds(self):
        g = build_elementwise_chain(8, 32)
        for p in (2, 4, 8):
            s = schedule_streaming(g, p, "rlx")
            util = pe_utilization(s.busy_time(), p, s.makespan)
            assert 0 < util <= 1.0 + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pe_utilization(10, 0, 5)
        with pytest.raises(ValueError):
            pe_utilization(10, 4, 0)


class TestSummary:
    def test_summary_keys(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 2, "rlx")
        summary = summarize_schedule(s)
        assert set(summary) == {
            "makespan",
            "speedup",
            "sslr",
            "utilization",
            "num_blocks",
        }
        assert summary["makespan"] == s.makespan
