"""Tests for the diagnosis layer: sampling profiler, flight recorder,
bench history analytics, and the live ops console."""

import json
import threading
import time

import pytest

from repro.obs import DEFAULT_HZ, FlightRecorder, SamplingProfiler, Telemetry
from repro.obs.benchhist import (
    HISTORY_SCHEMA,
    append_record,
    load_history,
    regression_verdict,
    render_history,
)


def _busy(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


class TestSamplingProfiler:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,), name="busy-worker")
        profiler = SamplingProfiler(hz=250.0)
        worker.start()
        try:
            with profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            worker.join()
        assert not profiler.running
        assert profiler.samples > 0
        assert profiler.ticks > 0
        assert profiler.elapsed_s >= 0.2
        # the worker thread's stacks are attributed to its thread name
        roots = {stack[0] for stack in profiler.stacks()}
        assert "busy-worker" in roots

    def test_own_sampler_thread_is_excluded(self):
        profiler = SamplingProfiler(hz=500.0)
        with profiler:
            time.sleep(0.1)
        roots = {stack[0] for stack in profiler.stacks()}
        assert "repro-profiler" not in roots

    def test_collapsed_format(self):
        profiler = SamplingProfiler()
        with profiler._lock:
            profiler._stacks[("main", "f (m.py:1)", "g (m.py:9)")] = 3
            profiler._stacks[("main", "f (m.py:1)")] = 1
            profiler.samples = 4
        text = profiler.collapsed()
        lines = text.splitlines()
        # heaviest first, semicolon-joined, trailing count
        assert lines[0] == "main;f (m.py:1);g (m.py:9) 3"
        assert lines[1] == "main;f (m.py:1) 1"
        assert text.endswith("\n")
        assert SamplingProfiler().collapsed() == ""

    def test_speedscope_document(self):
        profiler = SamplingProfiler(hz=100.0)
        with profiler._lock:
            profiler._stacks[("main", "f (m.py:1)")] = 5
            profiler.samples = 5
        doc = profiler.speedscope(name="unit")
        assert doc["$schema"].endswith("file-format-schema.json")
        (prof,) = doc["profiles"]
        assert prof["type"] == "sampled" and prof["unit"] == "seconds"
        # 5 samples at 100 Hz represent 50 ms
        assert prof["weights"] == [pytest.approx(0.05)]
        (sample,) = prof["samples"]
        frames = doc["shared"]["frames"]
        assert [frames[i]["name"] for i in sample] == ["main", "f (m.py:1)"]
        assert prof["endValue"] == pytest.approx(sum(prof["weights"]))
        json.dumps(doc)

    def test_top_stacks_and_functions(self):
        profiler = SamplingProfiler()
        with profiler._lock:
            profiler._stacks[("main", "a (m.py:1)", "hot (m.py:5)")] = 6
            profiler._stacks[("main", "b (m.py:2)", "hot (m.py:5)")] = 3
            profiler._stacks[("main", "cold (m.py:3)")] = 1
            profiler.samples = 10
        top = profiler.top_stacks(2)
        assert len(top) == 2
        assert top[0]["samples"] == 6 and top[0]["share"] == 0.6
        funcs = profiler.top_functions(1)
        # leaf self-time folds both hot stacks together
        assert funcs[0]["function"] == "hot (m.py:5)"
        assert funcs[0]["samples"] == 9
        snap = profiler.snapshot()
        assert snap["distinct_stacks"] == 3 and snap["samples"] == 10

    def test_start_stop_windows_accumulate(self):
        profiler = SamplingProfiler(hz=500.0)
        with profiler:
            time.sleep(0.05)
        first = profiler.elapsed_s
        with profiler:
            time.sleep(0.05)
        assert profiler.elapsed_s > first
        profiler.clear()
        assert profiler.samples == 0 and profiler.elapsed_s == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


class TestFlightRecorder:
    def test_ring_bounded_and_sequenced(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.record("tick", i=i)
        assert len(flight) == 3
        assert flight.recorded == 5
        events = flight.last()
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert [e["i"] for e in events] == [2, 3, 4]
        assert all(e["kind"] == "tick" and e["t"] > 0 for e in events)
        assert [e["i"] for e in flight.last(2)] == [3, 4]

    def test_concurrent_recording_loses_nothing(self):
        flight = FlightRecorder(capacity=10_000)
        n, writers = 500, 4

        def hammer(w):
            for i in range(n):
                flight.record("w", writer=w, i=i)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = flight.last()
        assert len(events) == n * writers
        assert flight.recorded == n * writers
        seqs = [e["seq"] for e in events]
        assert sorted(seqs) == list(range(1, n * writers + 1))

    def test_dump_writes_header_then_events(self, tmp_path):
        flight = FlightRecorder(capacity=8, dump_dir=tmp_path)
        flight.record("request", op="simulate")
        flight.record("deadlock", key="k")
        path = flight.dump("deadlock")
        assert path is not None and path.parent == tmp_path
        assert "deadlock" in path.name
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        header, *events = lines
        assert header["kind"] == "flight-dump"
        assert header["trigger"] == "deadlock"
        assert header["events"] == 2 and header["capacity"] == 8
        assert [e["kind"] for e in events] == ["request", "deadlock"]
        assert flight.snapshot()["dumps"][0]["path"] == str(path)

    def test_dump_without_directory_returns_none(self, tmp_path):
        flight = FlightRecorder()
        flight.record("x")
        assert flight.dump("manual") is None
        # an explicit path works even without a dump_dir
        out = tmp_path / "explicit.jsonl"
        assert flight.dump("manual", path=out) == out

    def test_maybe_dump_rate_limits_and_counts_suppressed(self, tmp_path):
        flight = FlightRecorder(
            capacity=8, dump_dir=tmp_path, min_dump_interval_s=60.0
        )
        flight.record("deadlock")
        first = flight.maybe_dump("deadlock")
        second = flight.maybe_dump("deadlock")
        assert first is not None and second is None
        assert flight.suppressed == 1
        assert len(flight.dumps) == 1

    def test_maybe_dump_respects_max_dumps(self, tmp_path):
        flight = FlightRecorder(
            capacity=8, dump_dir=tmp_path,
            min_dump_interval_s=0.0, max_dumps=2,
        )
        flight.record("x")
        assert flight.maybe_dump("a") is not None
        assert flight.maybe_dump("b") is not None
        assert flight.maybe_dump("c") is None
        assert flight.suppressed == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTelemetryDiagnosisWiring:
    def test_telemetry_always_has_a_flight_recorder(self):
        tel = Telemetry()
        assert isinstance(tel.flight, FlightRecorder)
        tel.flight.record("x")
        assert tel.flight.recorded == 1

    def test_slow_request_feeds_flight(self):
        tel = Telemetry(slow_request_ms=0.0)
        span = tel.span("schedule")
        time.sleep(0.002)
        span.finish("ok")
        events = tel.flight.last()
        assert [e["kind"] for e in events] == ["slow_request"]
        assert events[0]["op"] == "schedule"
        assert events[0]["wall_ms"] > 0

    def test_fast_requests_do_not_feed_flight(self):
        tel = Telemetry(slow_request_ms=10_000.0)
        tel.span("schedule").finish("ok")
        assert len(tel.flight) == 0

    def test_close_stops_the_profiler(self):
        profiler = SamplingProfiler(hz=DEFAULT_HZ).start()
        tel = Telemetry(profiler=profiler)
        assert tel.profiler.running
        tel.close()
        assert not profiler.running


class TestBenchHistory:
    METRIC = {"value": 100.0, "direction": "higher", "unit": "req/s"}

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = append_record(path, "service", {"rps": self.METRIC})
        assert record["schema"] == HISTORY_SCHEMA
        assert record["bench"] == "service"
        (loaded,) = load_history(path)
        assert loaded["metrics"]["rps"]["value"] == 100.0
        assert loaded["metrics"]["rps"]["direction"] == "higher"

    def test_load_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_record(path, "service", {"rps": self.METRIC})
        with open(path, "a") as fh:
            fh.write("{torn json\n")
            fh.write(json.dumps({"schema": 999, "metrics": {}}) + "\n")
        append_record(path, "sim", {"x": self.METRIC})
        assert len(load_history(path)) == 2
        assert [r["bench"] for r in load_history(path, bench="sim")] == ["sim"]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_direction_and_value_validated(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        with pytest.raises(ValueError):
            append_record(path, "b", {"m": {"value": 1.0, "direction": "up"}})
        with pytest.raises((TypeError, ValueError)):
            append_record(
                path, "b", {"m": {"value": "fast", "direction": "higher"}}
            )

    @staticmethod
    def _records(values, direction="higher", name="rps"):
        return [
            {
                "schema": HISTORY_SCHEMA,
                "bench": "b",
                "ts": f"2026-08-0{i + 1}T00:00:00",
                "git_rev": f"r{i}",
                "metrics": {name: {"value": v, "direction": direction}},
            }
            for i, v in enumerate(values)
        ]

    def test_verdict_insufficient_history_passes(self):
        verdict = regression_verdict(self._records([100.0]))
        assert verdict["status"] == "insufficient-history"
        assert verdict["regressed"] == []

    def test_verdict_ok_within_gate(self):
        records = self._records([100.0, 102.0, 98.0, 101.0, 95.0])
        verdict = regression_verdict(records, last_k=4, gate=1.10)
        assert verdict["status"] == "ok"
        m = verdict["metrics"]["rps"]
        # median of the 4 prior runs (100, 102, 98, 101) is 100.5
        assert m["median_prior"] == pytest.approx(100.5)
        assert m["ratio"] == pytest.approx(100.5 / 95.0, abs=1e-4)
        assert not m["regressed"]

    def test_verdict_regression_higher_is_better(self):
        records = self._records([100.0, 100.0, 100.0, 80.0])
        verdict = regression_verdict(records, last_k=3, gate=1.10)
        assert verdict["status"] == "regression"
        assert verdict["regressed"] == ["rps"]
        assert verdict["metrics"]["rps"]["ratio"] == pytest.approx(1.25)

    def test_verdict_regression_lower_is_better(self):
        records = self._records(
            [10.0, 10.0, 10.0, 15.0], direction="lower", name="p50_ms"
        )
        verdict = regression_verdict(records, last_k=3, gate=1.10)
        assert verdict["status"] == "regression"
        assert verdict["metrics"]["p50_ms"]["ratio"] == pytest.approx(1.5)
        # an improvement in a lower-is-better metric passes
        better = self._records(
            [10.0, 10.0, 8.0], direction="lower", name="p50_ms"
        )
        assert regression_verdict(better, gate=1.10)["status"] == "ok"

    def test_verdict_median_shrugs_off_one_noisy_run(self):
        # one historically slow run must not mask a real regression nor
        # flag a healthy candidate: median(100, 40, 101) = 100
        records = self._records([100.0, 40.0, 101.0, 99.0])
        verdict = regression_verdict(records, last_k=3, gate=1.10)
        assert verdict["status"] == "ok"
        assert verdict["metrics"]["rps"]["median_prior"] == pytest.approx(100.0)

    def test_verdict_metric_without_prior_runs(self):
        records = self._records([100.0, 100.0])
        records[-1]["metrics"]["fresh"] = {
            "value": 5.0, "direction": "higher"
        }
        verdict = regression_verdict(records)
        assert verdict["metrics"]["fresh"]["ratio"] is None
        assert verdict["status"] == "ok"

    def test_render_history_table(self):
        records = self._records([100.0, 95.5])
        table = render_history(records)
        assert "rps" in table and "ts" in table
        assert "100.00" in table and "95.50" in table
        assert render_history([]) == "(no history records)"


class TestSparkline:
    def test_shapes(self):
        from repro.service.console import sparkline

        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline(list(range(100)), width=10) == sparkline(
            list(range(90, 100)), width=10
        )
