"""Unit tests for the Section 6 FIFO sizing pass."""

import networkx as nx
import pytest

from repro import CanonicalGraph, schedule_streaming
from repro.core.buffer_sizing import compute_buffer_sizes, cycle_nodes_of_block
from repro.sim import simulate_schedule

from conftest import build_diamond, build_elementwise_chain


class TestCycleDetection:
    def test_tree_has_no_cycle_nodes(self):
        t = nx.Graph([(0, 1), (1, 2), (1, 3)])
        assert cycle_nodes_of_block(t) == set()

    def test_cycle_marks_members_only(self):
        g = nx.Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert cycle_nodes_of_block(g) == {0, 1, 2}

    def test_empty_graph(self):
        assert cycle_nodes_of_block(nx.Graph()) == set()


class TestSizing:
    def test_chain_edges_minimal(self):
        g = build_elementwise_chain(5, 16)
        s = schedule_streaming(g, 8)
        assert all(cap == 1 for cap in s.buffer_sizes.values())

    def test_balanced_diamond_minimal(self):
        """Equal-latency branches need no extra slack."""
        g = build_diamond(16)
        s = schedule_streaming(g, 8)
        assert all(cap == 1 for cap in s.buffer_sizes.values())

    def test_unbalanced_diamond_sized_by_delay(self):
        """One branch passes through an 8:1 downsampler + 1:8 upsampler:
        the fast branch channel must hold the delay difference."""
        g = CanonicalGraph()
        g.add_task(0, 32, 32)
        g.add_task("slow1", 32, 4)
        g.add_task("slow2", 4, 32)
        g.add_task("join", 32, 32)
        g.add_edge(0, "slow1")
        g.add_edge("slow1", "slow2")
        g.add_edge(0, "join")
        g.add_edge("slow2", "join")
        s = schedule_streaming(g, 8)
        fast = s.buffer_sizes[(0, "join")]
        assert fast > 1
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan == s.makespan

    def test_capped_by_edge_volume(self):
        """Never buffer more than the data ever sent on the edge."""
        g = CanonicalGraph()
        g.add_task(0, 4, 4)
        g.add_task("slow1", 4, 1)
        g.add_task("slow2", 1, 4)
        g.add_task("join", 4, 4)
        g.add_edge(0, "slow1")
        g.add_edge("slow1", "slow2")
        g.add_edge(0, "join")
        g.add_edge("slow2", "join")
        s = schedule_streaming(g, 8)
        assert s.buffer_sizes[(0, "join")] <= 4

    def test_non_streaming_edges_absent(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 2, "rlx")  # 2 blocks
        for (u, v) in s.buffer_sizes:
            assert s.is_streaming_edge(u, v)

    def test_occupancy_within_capacity(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        sim = simulate_schedule(s)
        for edge, (cap, occ) in sim.channel_stats.items():
            assert occ <= cap, edge

    def test_sized_capacity_actually_used(self, fig9_graph1):
        """The (0,4) channel really fills up to its 18 slots."""
        s = schedule_streaming(fig9_graph1, 8)
        sim = simulate_schedule(s)
        cap, occ = sim.channel_stats[(0, 4)]
        assert cap == 18
        assert occ == 18


class TestDefaultCapacity:
    def test_default_capacity_parameter(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8, size_buffers=False)
        sizes = compute_buffer_sizes(s, default_capacity=3)
        assert all(c >= 3 for c in sizes.values())
        assert sizes[(0, 4)] == 18
