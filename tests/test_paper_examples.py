"""Oracle tests against the paper's worked examples (Figures 6-9).

These numbers are printed in the paper, so they pin the implementation
to the authors' semantics exactly.
"""

import pytest

from repro import CanonicalGraph, compute_streaming_intervals, schedule_streaming
from repro.sim import simulate_schedule


class TestFigure8Shape:
    """Figure 8 shows a 5-task spatial block schedule; the figure's
    volumes are not fully legible in the text, but the schedule's
    qualitative properties are asserted here via Figure 9's graphs."""

    def test_single_block_when_p_large(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        assert s.num_blocks == 1


class TestFigure9Graph1:
    """ST/LO/FO table and B(0,4) = 18."""

    EXPECTED = {
        0: (0, 31 + 1, 1),
        1: (1, 33, 9),
        2: (9, 34, 18),
        3: (18, 50, 19),
        4: (19, 51, 20),
    }

    def test_schedule_table(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        for v, (st, lo, fo) in self.EXPECTED.items():
            t = s.times[v]
            assert (t.st, t.lo, t.fo) == (st, lo, fo), f"task {v}"

    def test_streaming_intervals(self, fig9_graph1):
        iv = compute_streaming_intervals(fig9_graph1)
        assert iv.so[0] == 1
        assert iv.so[1] == 8
        assert iv.so[2] == 16
        assert iv.so[3] == 1

    def test_buffer_space_is_18(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        assert s.buffer_sizes[(0, 4)] == 18

    def test_other_edges_minimal(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        for e, cap in s.buffer_sizes.items():
            if e != (0, 4):
                assert cap == 1

    def test_simulation_matches_and_no_deadlock(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan == s.makespan == 51

    def test_deadlocks_with_minimal_fifos(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, num_pes=8)
        sim = simulate_schedule(s, capacity_override=1)
        assert sim.deadlocked

    def test_17_slots_cause_a_bubble(self, fig9_graph1):
        """18 is the bubble-free size: one slot less still completes but
        stalls the pipeline past the analytic makespan (Section 6 sizes
        for "no bubbles", not merely for deadlock freedom)."""
        s = schedule_streaming(fig9_graph1, num_pes=8)
        s.buffer_sizes[(0, 4)] = 17
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan > s.makespan

    def test_14_slots_deadlock(self, fig9_graph1):
        """Task 1 must see 16 elements before task 0 stalls on the full
        shortcut channel; 14 slots starve the slow path entirely."""
        s = schedule_streaming(fig9_graph1, num_pes=8)
        s.buffer_sizes[(0, 4)] = 14
        sim = simulate_schedule(s)
        assert sim.deadlocked


class TestFigure9Graph2:
    """ST/LO/FO table and B(4,5) = 32."""

    EXPECTED = {
        0: (0, 32, 1),
        1: (1, 33, 33),
        2: (33, 65, 34),
        3: (0, 32, 1),
        4: (1, 33, 2),
        5: (34, 66, 35),
    }

    def test_schedule_table(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, num_pes=8)
        for v, (st, lo, fo) in self.EXPECTED.items():
            t = s.times[v]
            assert (t.st, t.lo, t.fo) == (st, lo, fo), f"task {v}"

    def test_buffer_space_is_32(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, num_pes=8)
        assert s.buffer_sizes[(4, 5)] == 32

    def test_simulation_matches_and_no_deadlock(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, num_pes=8)
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan == s.makespan == 66

    def test_deadlocks_with_minimal_fifos(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, num_pes=8)
        sim = simulate_schedule(s, capacity_override=1)
        assert sim.deadlocked


class TestFigure7:
    """Streaming intervals across a buffer split (volume[interval])."""

    def build(self) -> CanonicalGraph:
        """Reconstruction of Figure 7's left graph.

        WCC0: entry E(4,4) -> U(4,32) -> E(32,32) -> D(32,8), the
        downsampler feeding the buffer; WCC1: the buffer head feeding
        E(8,8) -> U(8,16) -> E(16,16) plus an E(4,4) side input.
        """
        g = CanonicalGraph()
        g.add_task("e0", 4, 4)
        g.add_task("u0", 4, 32)
        g.add_task("e1", 32, 32)
        g.add_task("d0", 32, 8)
        g.add_buffer("B", 8, 8)
        g.add_task("e2", 8, 8)
        g.add_task("u1", 8, 16)
        g.add_task("e3", 16, 16)
        for e in [
            ("e0", "u0"),
            ("u0", "e1"),
            ("e1", "d0"),
            ("d0", "B"),
            ("B", "e2"),
            ("e2", "u1"),
            ("u1", "e3"),
        ]:
            g.add_edge(*e)
        return g

    def test_two_wccs(self):
        g = self.build()
        iv = compute_streaming_intervals(g)
        assert sorted(iv.wcc_max_volume) == [16, 32]

    def test_intervals_per_component(self):
        g = self.build()
        iv = compute_streaming_intervals(g)
        # upstream component: constant 32
        assert iv.so["e0"] == 8  # 32/4
        assert iv.so["u0"] == 1  # 32/32
        assert iv.so["e1"] == 1
        assert iv.so["d0"] == 4  # 32/8
        # downstream component: constant 16, independent of upstream
        assert iv.so["e2"] == 2  # 16/8
        assert iv.so["u1"] == 1  # 16/16
        assert iv.so["e3"] == 1
