"""Property-based tests (hypothesis) on the core invariants.

Random canonical DAGs are generated from scratch (layered topologies
with canonical-consistent volumes) and the pipeline's invariants are
checked end to end: interval laws, schedule monotonicity, partition
correctness, DES agreement and deadlock freedom.
"""

from __future__ import annotations

import math
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CanonicalGraph,
    compute_spatial_blocks,
    compute_streaming_intervals,
    schedule_streaming,
    streaming_depth,
    total_work,
)
from repro.baselines import schedule_nonstreaming
from repro.core.levels import critical_path_length
from repro.sdf import canonical_to_csdf, rate_patterns, self_timed_makespan
from repro.sim import simulate_schedule

VOLUMES = (1, 2, 4, 8, 16)


@st.composite
def canonical_dags(draw, max_layers: int = 4, max_width: int = 4):
    """Layered random canonical DAGs of computational tasks.

    Volumes are drawn per producer-equivalence class: every node in
    layer ``i`` draws its output volume, and consumers in layer ``i+1``
    pick one *single* producer volume group to keep canonicality.
    """
    num_layers = draw(st.integers(1, max_layers))
    g = CanonicalGraph()
    layers: list[list[tuple[str, int]]] = []  # (name, out_volume)
    for li in range(num_layers):
        width = draw(st.integers(1, max_width))
        layer: list[tuple[str, int]] = []
        for wi in range(width):
            name = f"n{li}_{wi}"
            out_vol = draw(st.sampled_from(VOLUMES))
            if li == 0:
                in_vol = draw(st.sampled_from(VOLUMES))
                preds: list[str] = []
            else:
                # choose producers of one shared volume so all input
                # edges carry the same amount of data
                groups: dict[int, list[str]] = {}
                for pname, pvol in layers[li - 1]:
                    groups.setdefault(pvol, []).append(pname)
                vol = draw(st.sampled_from(sorted(groups)))
                candidates = groups[vol]
                k = draw(st.integers(1, min(2, len(candidates))))
                preds = draw(
                    st.lists(
                        st.sampled_from(candidates),
                        min_size=k,
                        max_size=k,
                        unique=True,
                    )
                )
                in_vol = vol
            g.add_task(name, in_vol, out_vol)
            for p in preds:
                g.add_edge(p, name)
            layer.append((name, out_vol))
        layers.append(layer)
    g.validate()
    return g


common = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@common
@given(canonical_dags())
def test_interval_laws(g: CanonicalGraph):
    """Equation (1), Equation (2) and Lemma 4.3 hold for every graph."""
    iv = compute_streaming_intervals(g)
    consts: dict[int, set[Fraction]] = {}
    for v in g.nodes:
        spec = g.spec(v)
        so, si = iv.so[v], iv.si[v]
        assert so >= 1 and si >= 1
        assert so == si / spec.production_rate
        c = iv.wcc_of[v]
        consts.setdefault(c, set()).add(so * spec.output_volume)
    for values in consts.values():
        assert len(values) == 1  # O(v) * S_o(v) constant per WCC


@common
@given(canonical_dags(), st.integers(1, 6), st.sampled_from(["lts", "rlx"]))
def test_partition_invariants(g: CanonicalGraph, pes: int, variant: str):
    p = compute_spatial_blocks(g, pes, variant)
    p.validate(g, pes)  # coverage, capacity, forward-only edges


@common
@given(canonical_dags(), st.integers(1, 6), st.sampled_from(["lts", "rlx"]))
def test_schedule_invariants(g: CanonicalGraph, pes: int, variant: str):
    s = schedule_streaming(g, pes, variant)
    s.validate()
    for v in g.computational_nodes():
        t = s.times[v]
        assert 0 <= t.st < t.fo <= t.lo
        # a task cannot finish faster than its work, nor run longer than
        # the whole schedule
        assert t.lo - t.st >= g.spec(v).work - 1
        assert t.lo <= s.makespan


@common
@given(canonical_dags(), st.integers(1, 6))
def test_speedup_bounded_by_pes(g: CanonicalGraph, pes: int):
    s = schedule_streaming(g, pes, "rlx", size_buffers=False)
    assert total_work(g) / s.makespan <= pes + 1e-9


@common
@given(canonical_dags(), st.integers(1, 6))
def test_nstr_bounds(g: CanonicalGraph, pes: int):
    s = schedule_nonstreaming(g, pes)
    s.validate()
    assert s.makespan >= critical_path_length(g)
    assert s.makespan >= math.ceil(total_work(g) / pes)
    assert s.makespan <= total_work(g)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(canonical_dags(max_layers=3, max_width=3), st.integers(1, 5))
def test_simulation_agrees_and_never_deadlocks(g: CanonicalGraph, pes: int):
    """The headline Section 6 guarantee, property-tested: with the
    computed FIFO sizes the execution completes, and the steady-state
    simulation matches the analytic makespan closely."""
    s = schedule_streaming(g, pes, "rlx")
    sim = simulate_schedule(s)
    assert not sim.deadlocked
    assert abs(sim.relative_error(s.makespan)) <= 0.25


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(canonical_dags(max_layers=3, max_width=3))
def test_csdf_self_timed_lower_bounds_schedule(g: CanonicalGraph):
    """Self-timed unbounded-PE CSDF execution is the greedy optimum; a
    single-block streaming schedule cannot beat it by more than the
    per-node rounding slack."""
    s = schedule_streaming(g, len(g), "rlx", size_buffers=False)
    res = self_timed_makespan(canonical_to_csdf(g))
    assert s.makespan >= res.makespan - len(g) - 1


@given(st.integers(1, 64), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_rate_patterns_conserve_volumes(i: int, o: int):
    cons, prod = rate_patterns(i, o)
    assert len(cons) == len(prod) == max(i, o)
    assert sum(cons) == i
    assert sum(prod) == o
    assert set(cons) <= {0, 1} and set(prod) <= {0, 1}


@common
@given(canonical_dags(max_layers=3, max_width=3))
def test_streaming_depth_lower_bounds_any_schedule_width(g: CanonicalGraph):
    """More PEs never hurt, and the single-block schedule at full width
    equals the streaming depth."""
    spans = [
        schedule_streaming(g, p, "rlx", size_buffers=False).makespan
        for p in (1, 2, len(g))
    ]
    assert spans[2] == streaming_depth(g)
