"""Tests for repro.obs: metrics registry, request spans, telemetry facade."""

import json
import threading
import time

import pytest

from repro.obs import (
    DEFAULT_MS_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    Span,
    SpanLog,
    Telemetry,
    TraceRecorder,
    get_registry,
    new_trace_id,
    set_registry,
    spans_to_chrome_trace,
)


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("test.count", "help text")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("test.count")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent_and_memoized(self):
        c = MetricsRegistry().counter("test.ops", labels=("op",))
        c.labels(op="a").inc()
        c.labels(op="a").inc()
        c.labels(op="b").inc(7)
        assert c.labels(op="a").value == 2
        assert c.labels(op="b").value == 7
        assert c.labels(op="a") is c.labels(op="a")

    def test_label_mismatch_rejected(self):
        c = MetricsRegistry().counter("test.ops", labels=("op",))
        with pytest.raises(ValueError):
            c.labels(nope="x")
        with pytest.raises(ValueError):
            c.labels(op="x", extra="y")
        with pytest.raises(ValueError):
            c.labels()

    def test_unlabeled_use_of_labeled_family_rejected(self):
        c = MetricsRegistry().counter("test.ops", labels=("op",))
        with pytest.raises(ValueError):
            c.inc()


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("test.depth")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0

    def test_fn_gauge_samples_at_read_time(self):
        box = {"v": 1.0}
        g = MetricsRegistry().gauge("test.live", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.5
        assert g.value == 9.5

    def test_reregistration_refreshes_the_sampler(self):
        reg = MetricsRegistry()
        reg.gauge("test.live", fn=lambda: 1.0)
        g = reg.gauge("test.live", fn=lambda: 2.0)
        assert g.value == 2.0


class TestHistograms:
    def test_observe_counts_and_sum(self):
        h = MetricsRegistry().histogram("test.ms", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(56.2)

    def test_buckets_are_cumulative_and_inf_equals_count(self):
        h = MetricsRegistry().histogram("test.ms", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        shot = h._only().snapshot()
        buckets = dict(shot["buckets"])
        assert buckets[1.0] == 1
        assert buckets[10.0] == 2
        assert buckets[float("inf")] == shot["count"] == 4

    def test_default_buckets_span_ms_latencies(self):
        assert DEFAULT_MS_BUCKETS[0] <= 0.1
        assert DEFAULT_MS_BUCKETS[-1] >= 1000.0
        assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("test.ms", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x.count", "help")
        b = reg.counter("x.count")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.thing")
        with pytest.raises(ValueError):
            reg.gauge("x.thing")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.thing", labels=("op",))
        with pytest.raises(ValueError):
            reg.counter("x.thing", labels=("tier",))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(3)
        reg.histogram("b.ms", labels=("op",)).labels(op="x").observe(2.0)
        snap = reg.snapshot()
        assert snap["a.count"]["type"] == "counter"
        assert snap["a.count"]["series"][0]["value"] == 3
        series = snap["b.ms"]["series"][0]
        assert series["labels"] == {"op": "x"}
        assert series["count"] == 1
        assert series["buckets"][-1][0] == "+Inf"
        assert series["buckets"][-1][1] == 1

    def test_render_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("service.requests", "reqs", labels=("op",)).labels(
            op="schedule"
        ).inc(2)
        reg.histogram("service.request_ms", buckets=(1.0,)).observe(0.5)
        text = reg.render()
        assert "# TYPE service_requests counter" in text
        assert 'service_requests{op="schedule"} 2' in text
        assert "# TYPE service_request_ms histogram" in text
        assert 'service_request_ms_bucket{le="1"} 1' in text
        assert 'service_request_ms_bucket{le="+Inf"} 1' in text
        assert "service_request_ms_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped_per_exposition_spec(self):
        # Prometheus text format 0.0.4: label values escape backslash,
        # double quote and newline
        reg = MetricsRegistry()
        reg.counter("test.ops", labels=("op",)).labels(
            op='a"b\\c\nd'
        ).inc()
        text = reg.render()
        assert 'test_ops{op="a\\"b\\\\c\\nd"} 1' in text
        assert "\nd" not in text.split("test_ops{")[1].split("}")[0]

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("test.ops", "line one\nline two \\ backslash")
        text = reg.render()
        assert "# HELP test_ops line one\\nline two \\\\ backslash" in text

    def test_render_emits_exactly_one_inf_bucket(self):
        # duplicate, unsorted and non-finite bounds must still yield a
        # single trailing +Inf line per series
        reg = MetricsRegistry()
        h = reg.histogram(
            "test.ms", buckets=(10.0, 1.0, 10.0, float("inf"))
        )
        assert h.buckets == (1.0, 10.0)
        h.observe(5.0)
        text = reg.render()
        inf_lines = [
            l for l in text.splitlines() if 'le="+Inf"' in l
        ]
        assert len(inf_lines) == 1
        assert inf_lines[0] == 'test_ms_bucket{le="+Inf"} 1'

    def test_histogram_needs_a_finite_bound(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram(
                "test.ms", buckets=(float("inf"),)
            )
        with pytest.raises(ValueError):
            MetricsRegistry().histogram(
                "test.ms", buckets=(float("nan"),)
            )

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_snapshot_consistent_under_concurrent_writes(self):
        """Histogram snapshots must be internally consistent (+Inf bucket
        == count) and counters monotonic while writers hammer them."""
        reg = MetricsRegistry()
        c = reg.counter("t.count", labels=("op",))
        h = reg.histogram("t.ms", buckets=(1.0, 10.0))
        stop = threading.Event()

        def writer():
            child = c.labels(op="w")
            while not stop.is_set():
                child.inc()
                h.observe(0.5)
                h.observe(5.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            last_count = 0
            for _ in range(200):
                snap = reg.snapshot()
                series = snap["t.ms"]["series"][0]
                assert series["buckets"][-1][1] == series["count"]
                counts = [n for _, n in series["buckets"]]
                assert counts == sorted(counts)  # cumulative
                total = sum(
                    s["value"] for s in snap["t.count"]["series"]
                )
                assert total >= last_count  # counters never go down
                last_count = total
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestSpan:
    def test_phases_record_wall_and_cpu(self):
        span = Span("schedule")
        with span.phase("work"):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.005:
                pass
        span.finish("ok")
        doc = span.to_dict()
        assert doc["op"] == "schedule"
        assert doc["meta"]["outcome"] == "ok"
        (phase,) = doc["phases"]
        assert phase["phase"] == "work"
        assert phase["wall_ms"] >= 5.0
        assert phase["cpu_ms"] is not None
        assert doc["wall_ms"] >= phase["wall_ms"]

    def test_add_phase_attaches_remote_timings(self):
        span = Span("schedule")
        span.add_phase("cand:rlx", wall_ms=12.5, cpu_ms=11.0)
        span.finish()
        (phase,) = span.to_dict()["phases"]
        assert phase["phase"] == "cand:rlx"
        assert phase["wall_ms"] == 12.5
        assert phase["cpu_ms"] == 11.0

    def test_finish_is_idempotent(self):
        recorder = TraceRecorder(8)

        class Sink:
            def record(self, s):
                recorder.record(s)

            def observe_phase(self, *a):
                pass

        span = Span("ping", sink=Sink())
        span.finish("ok")
        span.finish("error")
        assert recorder.recorded == 1
        assert recorder.last()[0]["meta"]["outcome"] == "ok"

    def test_trace_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100

    def test_null_span_is_inert(self):
        with NULL_SPAN.phase("anything") as s:
            assert s is NULL_SPAN
        NULL_SPAN.add_phase("x", wall_ms=1.0)
        NULL_SPAN.annotate(tier="lru")
        NULL_SPAN.finish("ok")  # no sink, no error


class TestTraceRecorder:
    def test_ring_is_bounded_oldest_dropped(self):
        ring = TraceRecorder(capacity=3)
        for i in range(5):
            ring.record({"op": f"r{i}"})
        assert ring.recorded == 5
        assert len(ring) == 3
        assert [s["op"] for s in ring.last()] == ["r2", "r3", "r4"]
        assert [s["op"] for s in ring.last(2)] == ["r3", "r4"]

    def test_span_objects_convert_on_read(self):
        ring = TraceRecorder(capacity=3)
        span = Span("schedule")
        span.finish("ok")
        ring.record(span)
        (doc,) = ring.last()
        assert isinstance(doc, dict) and doc["op"] == "schedule"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_truncation_exactly_at_capacity(self):
        # no off-by-one at the boundary: the Nth span fits, the N+1st
        # evicts exactly one, and `recorded` keeps counting
        ring = TraceRecorder(capacity=4)
        for i in range(4):
            ring.record({"op": f"r{i}"})
        assert len(ring) == 4 and ring.recorded == 4
        assert [s["op"] for s in ring.last()] == ["r0", "r1", "r2", "r3"]
        ring.record({"op": "r4"})
        assert len(ring) == 4
        assert ring.recorded == 5
        assert [s["op"] for s in ring.last()] == ["r1", "r2", "r3", "r4"]
        # dropped spans are derivable from the two counters
        assert ring.recorded - len(ring) == 1
        # last(n) never exceeds residency, even for n > capacity
        assert len(ring.last(100)) == 4
        assert ring.last(0) == []

    def test_recorded_counts_under_concurrent_writers(self):
        ring = TraceRecorder(capacity=8)
        n, writers = 300, 4

        def hammer(w):
            for i in range(n):
                ring.record({"op": f"w{w}", "i": i})

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ring.recorded == n * writers
        assert len(ring) == 8


class TestSpanLog:
    def test_writes_jsonl(self, tmp_path):
        log = SpanLog(tmp_path)
        log.write({"op": "a"})
        log.write({"op": "b"})
        log.close()
        (path,) = log.files()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["op"] for l in lines] == ["a", "b"]

    def test_rotation_and_prune(self, tmp_path):
        log = SpanLog(tmp_path, max_bytes=200, max_files=2)
        for i in range(50):
            log.write({"op": "x", "pad": "y" * 40, "i": i})
        log.close()
        files = log.files()
        assert len(files) <= 2
        # the newest file holds the newest spans
        last = json.loads(files[-1].read_text().splitlines()[-1])
        assert last["i"] == 49

    def test_rotation_under_concurrent_writers(self, tmp_path):
        # rotation decisions race across writer threads; every span must
        # land in exactly one surviving or pruned file, uncorrupted
        log = SpanLog(tmp_path, max_bytes=1000, max_files=50)
        n, writers = 120, 4

        def hammer(w):
            for i in range(n):
                log.write({"op": "x", "w": w, "i": i, "pad": "p" * 30})

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        files = log.files()
        assert len(files) > 1  # rotation actually happened
        seen = set()
        for path in files:
            for line in path.read_text().splitlines():
                doc = json.loads(line)  # no torn/interleaved lines
                seen.add((doc["w"], doc["i"]))
        # max_files was high enough that nothing was pruned: every
        # write is present exactly once
        assert len(seen) == n * writers
        # every non-final file respected the rotation threshold closely
        # (one oversized span may overshoot, never two)
        for path in files[:-1]:
            assert path.stat().st_size <= 1000 + 200

    def test_append_resumes_highest_index(self, tmp_path):
        first = SpanLog(tmp_path)
        first.write({"op": "a"})
        first.close()
        second = SpanLog(tmp_path)
        second.write({"op": "b"})
        second.close()
        (path,) = second.files()
        assert len(path.read_text().splitlines()) == 2


class TestChromeTrace:
    def test_schema(self):
        span = Span("schedule", tier="lru")
        with span.phase("cache"):
            pass
        span.finish("ok")
        events = spans_to_chrome_trace([span.to_dict()])
        assert len(events) == 2
        top, phase = events
        assert top["ph"] == "X" and top["name"] == "schedule"
        assert top["pid"] == 1  # pid 0 is the simulator's
        assert top["dur"] >= 1 and top["ts"] > 0
        assert top["args"]["trace_id"]
        assert top["args"]["tier"] == "lru"
        assert phase["name"] == "cache" and phase["cat"] == "phase"
        json.dumps(events)  # loadable by a trace viewer


class TestTelemetry:
    def test_spans_feed_phase_and_request_histograms(self):
        tel = Telemetry()
        span = tel.span("schedule")
        with span.phase("cache"):
            pass
        span.finish("ok")
        snap = tel.registry.snapshot()
        (series,) = [
            s for s in snap["service.phase_ms"]["series"]
            if s["labels"] == {"op": "schedule", "phase": "cache"}
        ]
        assert series["count"] == 1
        (req,) = snap["service.request_ms"]["series"]
        assert req["labels"] == {"op": "schedule", "outcome": "ok"}
        assert req["count"] == 1
        assert tel.recorder.recorded == 1

    def test_observe_phase_children_memoized(self):
        tel = Telemetry()
        tel.observe_phase("schedule", "cache", 1.0, 0.5)
        tel.observe_phase("schedule", "cache", 2.0, 0.5)
        assert len(tel._phase_children) == 1
        family = tel.registry.histogram(
            "service.phase_ms", labels=("op", "phase")
        )
        assert family.labels(op="schedule", phase="cache").count == 2

    def test_disabled_telemetry_is_null(self):
        tel = Telemetry(enabled=False)
        assert tel.span("schedule") is NULL_SPAN
        tel.observe_phase("schedule", "cache", 1.0, 0.5)
        tel.observe_request("schedule", "fastpath", 0.1)
        assert "service.phase_ms" not in tel.registry.snapshot()
        assert tel.chrome_trace() == []
        # counters registered through the registry still work
        tel.registry.counter("service.served").inc()
        assert tel.registry.counter("service.served").value == 1

    def test_trace_dir_writes_spans(self, tmp_path):
        tel = Telemetry(trace_dir=tmp_path)
        span = tel.span("ping")
        span.finish("ok")
        tel.close()
        (path,) = sorted(tmp_path.glob("spans-*.jsonl"))
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["op"] == "ping"

    def test_chrome_trace_last_n(self):
        tel = Telemetry()
        for i in range(5):
            tel.span("ping").finish("ok")
        events = tel.chrome_trace(2)
        assert len(events) == 2  # no phases: one slice per span
