"""Unit tests for the CSDF substrate (Section 7.2 comparison)."""

import pytest

from repro import CanonicalGraph, schedule_streaming
from repro.graphs import random_canonical_graph
from repro.sdf import (
    AnalysisTimeout,
    CsdfGraph,
    InconsistentGraphError,
    canonical_to_csdf,
    rate_patterns,
    self_timed_makespan,
)

from conftest import build_elementwise_chain


class TestRatePatterns:
    def test_elementwise(self):
        cons, prod = rate_patterns(4, 4)
        assert cons == (1, 1, 1, 1)
        assert prod == (1, 1, 1, 1)

    def test_downsampler(self):
        cons, prod = rate_patterns(4, 1)
        assert cons == (1, 1, 1, 1)
        assert prod == (0, 0, 0, 1)

    def test_upsampler(self):
        cons, prod = rate_patterns(1, 4)
        assert cons == (1, 0, 0, 0)
        assert prod == (1, 1, 1, 1)

    def test_fractional_rate(self):
        cons, prod = rate_patterns(3, 2)
        assert len(cons) == 3
        assert sum(cons) == 3
        assert sum(prod) == 2

    def test_totals_always_match_volumes(self):
        for i in (1, 2, 3, 5, 8):
            for o in (1, 2, 3, 5, 8):
                cons, prod = rate_patterns(i, o)
                assert len(cons) == max(i, o)
                assert sum(cons) == i
                assert sum(prod) == o
                # at most one element per cycle on each side
                assert all(c in (0, 1) for c in cons)
                assert all(p in (0, 1) for p in prod)


class TestRepetitionVector:
    def test_balanced_chain(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1, 1))
        g.add_channel("a", "b", production=(2,), consumption=(1, 1))
        q = g.repetition_vector()
        assert q == {"a": 1, "b": 1}

    def test_rate_mismatch_scales(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1,))
        g.add_channel("a", "b", production=(3,), consumption=(2,))
        q = g.repetition_vector()
        assert q == {"a": 2, "b": 3}

    def test_inconsistent_rejected(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1,))
        g.add_channel("a", "b", production=(1,), consumption=(1,))
        g.add_channel("a", "b", production=(1,), consumption=(2,))
        with pytest.raises(InconsistentGraphError):
            g.repetition_vector()

    def test_pattern_length_validation(self):
        g = CsdfGraph()
        g.add_actor("a", (1, 1))
        g.add_actor("b", (1,))
        with pytest.raises(ValueError):
            g.add_channel("a", "b", production=(1,), consumption=(1,))


class TestSelfTimedExecution:
    def test_two_actor_pipeline(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1,))
        g.add_channel("a", "b", production=(1,), consumption=(1,))
        # one iteration: a fires at 0..1, b consumes and ends at 2
        res = self_timed_makespan(g)
        assert res.makespan == 2
        assert res.firings == 2

    def test_initial_tokens_enable_firing(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1,))
        g.add_channel("a", "b", production=(1,), consumption=(1,), initial_tokens=1)
        res = self_timed_makespan(g)
        # b can fire immediately thanks to the initial token
        assert res.makespan == 1

    def test_deadlock_detected(self):
        g = CsdfGraph()
        g.add_actor("a", (1,))
        g.add_actor("b", (1,))
        g.add_channel("a", "b", production=(1,), consumption=(1,))
        g.add_channel("b", "a", production=(1,), consumption=(1,))  # no tokens
        with pytest.raises(RuntimeError):
            self_timed_makespan(g)

    def test_firing_budget(self):
        g = build_elementwise_chain(4, 64)
        csdf = canonical_to_csdf(g)
        with pytest.raises(AnalysisTimeout):
            self_timed_makespan(csdf, max_firings=10)


class TestConversion:
    def test_buffer_nodes_rejected(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_buffer("B", 4, 4)
        g.add_edge("a", "B")
        with pytest.raises(ValueError):
            canonical_to_csdf(g)

    def test_chain_makespan_matches_streaming_depth(self):
        """For an element-wise chain both models agree exactly:
        k + L - 1 ... plus one cycle for the memory-injection actor."""
        g = build_elementwise_chain(5, 16)
        csdf = canonical_to_csdf(g)
        res = self_timed_makespan(csdf)
        assert res.makespan == 16 + 5 - 1 + 1

    def test_makespan_close_to_schedule(self):
        """Figure 12's claim: canonical schedules are within a few
        percent of the CSDF (optimal self-timed) makespan."""
        for topo, size in [("chain", 8), ("fft", 8), ("gaussian", 8)]:
            for seed in range(3):
                g = random_canonical_graph(topo, size, seed=seed)
                s = schedule_streaming(g, len(g), "rlx", size_buffers=False)
                res = self_timed_makespan(canonical_to_csdf(g))
                ratio = s.makespan / res.makespan
                assert 0.9 <= ratio <= 1.35, (topo, seed, ratio)

    def test_sources_and_sinks_convert(self):
        g = CanonicalGraph()
        g.add_source("s", 8)
        g.add_task("e", 8, 8)
        g.add_sink("t", 8)
        g.add_edge("s", "e")
        g.add_edge("e", "t")
        csdf = canonical_to_csdf(g)
        res = self_timed_makespan(csdf)
        assert res.makespan > 0
