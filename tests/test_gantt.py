"""Unit tests for the ASCII Gantt renderer."""

from repro import schedule_streaming
from repro.core.gantt import render_gantt

from conftest import build_elementwise_chain


class TestRenderGantt:
    def test_row_per_pe(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 3, "rlx")
        out = render_gantt(s)
        lines = out.splitlines()
        assert len(lines) == 3 + 2  # PEs + axis + scale
        assert lines[0].lstrip().startswith("PE0")

    def test_occupancy_marks_present(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 4, "rlx")
        out = render_gantt(s)
        body = "".join(out.splitlines()[:4])
        assert any(ch not in " |+" for ch in body.replace("PE", "").replace("0", ""))

    def test_block_boundary_marked(self):
        g = build_elementwise_chain(6, 16)
        s = schedule_streaming(g, 2, "rlx")  # 3 sequential blocks
        out = render_gantt(s)
        assert "|" in out

    def test_width_respected(self):
        g = build_elementwise_chain(3, 8)
        s = schedule_streaming(g, 3, "rlx")
        out = render_gantt(s, width=40, label_width=6)
        for line in out.splitlines():
            assert len(line) <= 6 + 1 + 40

    def test_busy_pe_fully_marked(self):
        g = build_elementwise_chain(1, 32)
        s = schedule_streaming(g, 1, "rlx")
        out = render_gantt(s, width=32)
        row = out.splitlines()[0].split(None, 1)[1]
        assert row.count(" ") <= 1
