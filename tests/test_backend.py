"""Backend selection + numpy-kernel parity and fallback contracts.

The ``numpy`` backend must be **byte-identical** to the pure-Python
path everywhere: schedules serialize to the same documents, simulations
report the same timings/deadlocks, and every int64 overflow guard falls
back to the exact path while counting itself in
``core.kernel_fallbacks``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import schedule_streaming
from repro.core import backend as BK
from repro.core.indexed import freeze
from repro.core.serialize import schedule_to_dict
from repro.graphs import random_canonical_graph
from repro.sim.runner import simulate_schedule

needs_numpy = pytest.mark.skipif(
    not BK.HAVE_NUMPY, reason="numpy backend not installed"
)

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _reset_backend():
    """Tests may pin the process default; always restore auto."""
    yield
    BK.set_default_backend(None)


def sdoc(g, pes, variant, backend):
    return json.dumps(schedule_to_dict(
        schedule_streaming(g, pes, variant, backend=backend)))


def sim_equal(a, b):
    assert a.makespan == b.makespan
    assert a.finish_times == b.finish_times
    assert a.start_times == b.start_times
    assert a.deadlocked == b.deadlocked
    assert a.blocked == b.blocked
    assert a.channel_stats == b.channel_stats
    assert a.deadlock_channels == b.deadlock_channels


class TestSelectionPortable:
    """Selection semantics that hold with or without numpy installed."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BK.resolve_backend("fortran")

    def test_explicit_numpy_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(BK, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError):
            BK.resolve_backend("numpy")
        # auto degrades silently by design
        assert BK.resolve_backend("auto") == "python"

    def test_backend_info_shape(self):
        info = BK.backend_info()
        assert info["backend"] in ("numpy", "python")
        assert isinstance(info["kernel_fallbacks"], dict)

    def test_fallbacks_reach_metrics_registry(self):
        from repro.obs import get_registry

        BK.count_fallback("test.kernel", 3)
        family = get_registry().snapshot()["core.kernel_fallbacks"]
        assert family["type"] == "counter"
        hits = [
            s for s in family["series"]
            if s["labels"].get("kernel") == "test.kernel"
        ]
        assert hits and hits[0]["value"] >= 3


@needs_numpy
class TestSelection:
    def test_auto_prefers_numpy_when_installed(self):
        assert BK.resolve_backend(None) == "numpy"
        assert BK.resolve_backend("auto") == "numpy"

    def test_explicit_choice_wins(self):
        assert BK.resolve_backend("python") == "python"
        assert BK.resolve_backend("numpy") == "numpy"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert BK.resolve_backend(None) == "python"
        # an explicit argument still beats the environment
        assert BK.resolve_backend("numpy") == "numpy"

    def test_process_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        BK.set_default_backend("python")
        assert BK.resolve_backend(None) == "python"
        BK.set_default_backend(None)
        assert BK.resolve_backend(None) == "numpy"


SCENARIOS = [
    ("layered", 200, 32, "rlx"),
    ("layered", 200, 32, "lts"),
    ("serpar", 200, 32, "lts"),
    ("fft", 64, 16, "lts"),
    ("gaussian", 10, 16, "rlx"),
    ("cholesky", 8, 16, "lts"),
]


@needs_numpy
class TestScheduleParity:
    @pytest.mark.parametrize("topo,size,pes,variant", SCENARIOS)
    def test_documents_byte_identical(self, topo, size, pes, variant):
        for seed in (0, 1):
            g = random_canonical_graph(topo, size, seed=seed)
            assert sdoc(g, pes, variant, "python") == \
                sdoc(g, pes, variant, "numpy")

    def test_parity_without_scipy(self, monkeypatch):
        """The union-find WCC path must match scipy's components."""
        from repro.core import kernels

        monkeypatch.setattr(kernels, "_HAVE_SCIPY", False)
        g = random_canonical_graph("layered", 300, seed=3)
        assert sdoc(g, 32, "rlx", "python") == sdoc(g, 32, "rlx", "numpy")

    def test_forced_levels_match_python(self):
        """levels_numpy under force= must equal the python recurrence
        even on graphs the width heuristic would skip."""
        from repro.core.kernels import levels_numpy

        for topo, size in (("layered", 150), ("fft", 64), ("cholesky", 8)):
            g = random_canonical_graph(topo, size, seed=0)
            ig = freeze(g)
            BK.set_default_backend("python")
            ig.level_keys()  # computes the exact python numerators
            num = levels_numpy(ig, ig._level_den, force=True)
            BK.set_default_backend(None)
            assert num is not None
            assert list(num) == list(ig._level_num)


@needs_numpy
class TestSimParity:
    @pytest.mark.parametrize("topo", ["layered", "serpar"])
    def test_policies_pacings_and_deadlocks(self, topo):
        g = random_canonical_graph(topo, 200, seed=0)
        s = schedule_streaming(g, 32, "lts", backend="python")
        for policy in ("barrier", "pe", "dataflow"):
            for pacing in ("steady", "greedy"):
                sim_equal(
                    simulate_schedule(s, policy=policy, pacing=pacing,
                                      backend="python"),
                    simulate_schedule(s, policy=policy, pacing=pacing,
                                      backend="numpy"),
                )
        # undersized FIFOs: the deadlock verdict, horizon, blocked set
        # and per-channel occupancies must agree exactly
        sim_equal(
            simulate_schedule(s, capacity_override=1, backend="python"),
            simulate_schedule(s, capacity_override=1, backend="numpy"),
        )

    def test_rate_skewed_batches(self):
        """Wide rate ratios + ample FIFOs drive the batched consume and
        emit scans (the scalar path alone would never cover them)."""
        g = random_canonical_graph("layered", 120, seed=2,
                                   volume_choices=(8, 512))
        s = schedule_streaming(g, 16, "rlx", backend="python")
        for cap in (None, 64):
            sim_equal(
                simulate_schedule(s, capacity_override=cap,
                                  backend="python"),
                simulate_schedule(s, capacity_override=cap,
                                  backend="numpy"),
            )


def _chain(volumes):
    """A canonical chain a0 -> a1 -> ... with the given volume pairs."""
    from repro import CanonicalGraph

    g = CanonicalGraph()
    prev = None
    for i, (vi, vo) in enumerate(volumes):
        g.add_task(i, vi, vo)
        if prev is not None:
            g.add_edge(prev, i)
        prev = i
    return g


def _fallback_delta(fn):
    before = dict(BK.fallback_counts)
    result = fn()
    delta = {
        k: v - before.get(k, 0)
        for k, v in BK.fallback_counts.items()
        if v != before.get(k, 0)
    }
    return result, delta


@needs_numpy
class TestOverflowFallbacks:
    """Adversarial volumes trip the int64 guards; results stay exact."""

    def test_huge_rate_denominator_falls_back(self):
        # the upsampler's input volume IS the level denominator, and
        # P >= 2**31 violates the levels kernel's product bound
        P = (1 << 31) + 9
        g = _chain([(P, P), (P, 2 * P), (2 * P, 2 * P)])
        (a, b), delta = _fallback_delta(lambda: (
            sdoc(g, 2, "lts", "numpy"), sdoc(g, 2, "lts", "python")))
        assert a == b
        assert delta.get("core.levels", 0) >= 1

    def test_beyond_int64_volumes_fall_back_wholesale(self):
        V = 1 << 70  # not representable in the int64 arrays at all
        g = _chain([(V, V), (V, V), (V, V)])
        (a, b), delta = _fallback_delta(lambda: (
            sdoc(g, 2, "lts", "numpy"), sdoc(g, 2, "lts", "python")))
        assert a == b
        assert delta.get("core.levels", 0) >= 1
        assert delta.get("core.block_sweep", 0) >= 1

    def test_sim_horizon_guard_delegates_to_scalar(self, monkeypatch):
        from repro.sim import kernels as sk

        g = random_canonical_graph("layered", 80, seed=0)
        s = schedule_streaming(g, 8, "lts", backend="python")
        monkeypatch.setattr(sk, "_HORIZON_SAFE", 1)
        (r_np, r_py), delta = _fallback_delta(lambda: (
            sk.simulate_schedule_numpy(s),
            simulate_schedule(s, backend="python"),
        ))
        sim_equal(r_np, r_py)
        assert delta.get("sim.overflow", 0) == 1

    def test_sim_pacing_guard_disables_batches(self, monkeypatch):
        from repro.sim import kernels as sk

        g = random_canonical_graph("layered", 80, seed=0)
        s = schedule_streaming(g, 8, "lts", backend="python")
        monkeypatch.setattr(sk, "_C31", 4)  # every volume now "unsafe"
        (r_np, r_py), delta = _fallback_delta(lambda: (
            sk.simulate_schedule_numpy(s),
            simulate_schedule(s, backend="python"),
        ))
        sim_equal(r_np, r_py)
        assert delta.get("sim.pacing", 0) == 1  # counted once per sim


class TestFreezeLcm:
    def test_rate_one_graphs_skip_the_lcm_entirely(self, monkeypatch):
        """No upsamplers -> denominator 1 without a single lcm call."""
        import repro.core.indexed as idx

        calls = []
        real = idx.lcm
        monkeypatch.setattr(
            idx, "lcm", lambda *a: calls.append(a) or real(*a))
        g = random_canonical_graph("layered", 300, seed=0,
                                   volume_choices=(16,))
        ig = freeze(g)
        ig.level_keys()
        assert calls == []
        assert ig._level_den == 1

    def test_lcm_reduces_over_unique_upsampler_volumes(self, monkeypatch):
        import repro.core.indexed as idx

        calls = []
        real = idx.lcm
        monkeypatch.setattr(
            idx, "lcm", lambda *a: calls.append(a) or real(*a))
        # two upsamplers with distinct input volumes: one lcm step each
        g = _chain([(8, 8), (8, 32), (32, 64)])
        ig = freeze(g)
        ig.level_keys()
        assert len(calls) == len({8, 32})
        assert ig._level_den == 32  # lcm(8, 32)


class TestNoNumpy:
    def test_pure_python_stack_without_numpy(self):
        """Full pipeline in a numpy-blocked interpreter (the CI leg)."""
        code = (
            "import importlib.abc, sys\n"
            "class B(importlib.abc.MetaPathFinder):\n"
            "    def find_spec(self, name, path=None, target=None):\n"
            "        if name == 'numpy' or name.startswith('numpy.'):\n"
            "            raise ImportError('blocked')\n"
            "sys.meta_path.insert(0, B())\n"
            f"sys.path.insert(0, {str(ROOT / 'src')!r})\n"
            "from repro.core.backend import HAVE_NUMPY, default_backend\n"
            "assert not HAVE_NUMPY\n"
            "assert default_backend() == 'python'\n"
            "from repro.core import schedule_streaming\n"
            "from repro.graphs import random_canonical_graph\n"
            "from repro.sim.runner import simulate_schedule\n"
            "g = random_canonical_graph('layered', 80, seed=1)\n"
            "s = schedule_streaming(g, 8, 'lts')\n"
            "r = simulate_schedule(s)\n"
            "assert not r.deadlocked and r.makespan > 0\n"
            "print('ok')\n"
        )
        import os

        env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=240, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
