"""Cross-module integration and failure-injection tests."""

import random

import pytest

from repro import schedule_streaming, streaming_depth, total_work
from repro.baselines import schedule_heft, schedule_nonstreaming
from repro.graphs import PAPER_SIZES, random_canonical_graph
from repro.ml import CanonicalModelBuilder
from repro.placement import place_schedule
from repro.sim import simulate_schedule


class TestFullPipeline:
    """Generate -> partition -> schedule -> size -> simulate -> place."""

    @pytest.mark.parametrize("topo", sorted(PAPER_SIZES))
    def test_every_topology_end_to_end(self, topo):
        size = {"chain": 8, "fft": 16, "gaussian": 10, "cholesky": 6}[topo]
        g = random_canonical_graph(topo, size, seed=11)
        for variant in ("lts", "rlx", "work"):
            s = schedule_streaming(g, 16, variant)
            s.validate()
            sim = simulate_schedule(s)
            assert not sim.deadlocked
            assert abs(sim.relative_error(s.makespan)) < 0.1
            placement = place_schedule(s)
            placement.validate()

    def test_all_schedulers_agree_on_sequential_limit(self):
        g = random_canonical_graph("gaussian", 8, seed=5)
        t1 = total_work(g)
        assert schedule_streaming(g, 1, "rlx").makespan == t1
        assert schedule_nonstreaming(g, 1).makespan == t1
        assert schedule_heft(g, [1.0]).makespan == t1

    def test_ml_graph_through_full_pipeline(self):
        b = CanonicalModelBuilder("mini", max_parallel=8)
        x = b.input(64)
        h = b.relu(b.linear(x, 8, 8, 8))
        y = b.softmax(h)
        b.output(b.add(y, b.reshape(x)))
        g = b.finish()
        s = schedule_streaming(g, 8, "lts")
        s.validate()
        sim = simulate_schedule(s)
        assert not sim.deadlocked


class TestCapacityFuzzing:
    """Failure injection on FIFO capacities: executions either complete
    (possibly slower) or deadlock — they never produce a makespan below
    the fully-sized one, and capacities >= computed always complete."""

    def test_random_capacity_injection(self):
        rng = random.Random(0)
        g = random_canonical_graph("fft", 8, seed=2)
        s = schedule_streaming(g, 16, "rlx")
        baseline = simulate_schedule(s).makespan
        for _ in range(10):
            forced = {
                e: max(1, rng.randint(1, max(1, cap)))
                for e, cap in s.buffer_sizes.items()
            }
            saved = dict(s.buffer_sizes)
            s.buffer_sizes.update(forced)
            sim = simulate_schedule(s)
            s.buffer_sizes.update(saved)
            if not sim.deadlocked:
                assert sim.makespan >= baseline

    def test_inflated_capacities_never_hurt(self):
        g = random_canonical_graph("cholesky", 5, seed=3)
        s = schedule_streaming(g, 16, "rlx")
        base = simulate_schedule(s).makespan
        s.buffer_sizes = {e: c + 100 for e, c in s.buffer_sizes.items()}
        inflated = simulate_schedule(s)
        assert not inflated.deadlocked
        assert inflated.makespan <= base

    def test_capacity_monotonicity_on_fig9(self, fig9_graph1):
        """Growing the hot channel from deadlock to sized: the outcome
        transitions deadlock -> bubble -> exact, monotonically."""
        s = schedule_streaming(fig9_graph1, 8)
        outcomes = []
        for cap in range(1, 19):
            s.buffer_sizes[(0, 4)] = cap
            sim = simulate_schedule(s)
            outcomes.append(None if sim.deadlocked else sim.makespan)
        # once it completes it never deadlocks again, and makespans
        # decrease monotonically to the analytic 51
        first_ok = next(i for i, o in enumerate(outcomes) if o is not None)
        assert all(o is not None for o in outcomes[first_ok:])
        spans = [o for o in outcomes[first_ok:]]
        assert spans == sorted(spans, reverse=True)
        assert spans[-1] == 51


class TestConsistencyAcrossSchedulers:
    def test_streaming_not_worse_than_nstr_with_full_width(self):
        """With P >= #tasks a single streaming block pipelines the whole
        graph; it must beat (or match) buffered execution on graphs
        without buffer nodes."""
        better = 0
        for seed in range(10):
            g = random_canonical_graph("chain", 8, seed=seed)
            s = schedule_streaming(g, 8, "rlx", size_buffers=False)
            ns = schedule_nonstreaming(g, 8)
            if s.makespan <= ns.makespan:
                better += 1
        assert better == 10

    def test_streaming_depth_consistency(self):
        for seed in range(5):
            g = random_canonical_graph("fft", 8, seed=seed)
            assert (
                schedule_streaming(g, len(g), "rlx", size_buffers=False).makespan
                == streaming_depth(g)
            )
