"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import DeadlockError, Environment, SimulationError
from repro.sim.channel import FifoChannel, MemoryStream


class TestEvents:
    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(3)
            log.append(env.now)

        env.process(proc(), "p")
        assert env.run() == 8
        assert log == [5, 8]

    def test_zero_delay_timeout(self):
        env = Environment()
        hits = []

        def proc():
            yield env.timeout(0)
            hits.append(env.now)

        env.process(proc(), "p")
        env.run()
        assert hits == [0]

    def test_event_double_trigger_rejected(self):
        env = Environment()
        ev = env.event("x")
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_late_callback_runs_immediately(self):
        env = Environment()
        ev = env.event("x")
        ev.trigger()
        env.run()
        hits = []
        ev.add_callback(lambda e: hits.append(True))
        assert hits == [True]

    def test_callback_after_processing_sees_the_value(self):
        env = Environment()

        def worker():
            yield env.timeout(2)
            return "payload"

        proc = env.process(worker(), "w")
        env.run()
        seen = []
        proc.completion.add_callback(lambda e: seen.append(e.value))
        assert seen == ["payload"]
        # further callbacks keep running immediately, in call order
        proc.completion.add_callback(lambda e: seen.append("again"))
        assert seen == ["payload", "again"]

    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def worker(d):
            yield env.timeout(d)

        procs = [env.process(worker(d), f"w{d}") for d in (3, 7, 5)]

        def waiter():
            yield env.all_of([p.completion for p in procs])
            done.append(env.now)

        env.process(waiter(), "waiter")
        env.run()
        assert done == [7]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        hits = []

        def proc():
            yield env.all_of([])
            hits.append(env.now)

        env.process(proc(), "p")
        env.run()
        assert hits == [0]

    def test_all_of_empty_generator_input(self):
        env = Environment()
        combined = env.all_of(ev for ev in [])
        env.run()
        assert combined.triggered and combined.processed

    def test_all_of_with_already_fired_events(self):
        env = Environment()
        fired = [env.event(f"e{i}") for i in range(3)]
        for ev in fired:
            ev.trigger()
        env.run()
        assert all(ev.processed for ev in fired)
        hits = []

        def waiter():
            yield env.all_of(fired)
            hits.append(env.now)

        env.process(waiter(), "w")
        env.run()
        assert hits == [0]

    def test_all_of_mixing_fired_and_pending_events(self):
        env = Environment()
        done = env.event("done")
        done.trigger()
        env.run()
        hits = []

        def worker():
            yield env.timeout(4)

        proc = env.process(worker(), "w")

        def waiter():
            yield env.all_of([done, proc.completion])
            hits.append(env.now)

        env.process(waiter(), "waiter")
        env.run()
        assert hits == [4]

    def test_completion_value(self):
        env = Environment()

        def worker():
            yield env.timeout(2)
            return 42

        p = env.process(worker(), "w")
        results = []

        def reader():
            value = yield p.completion
            results.append(value)

        env.process(reader(), "r")
        env.run()
        assert results == [42]

    def test_bad_yield_rejected(self):
        env = Environment()

        def proc():
            yield "not an event"

        env.process(proc(), "p")
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.timeout(10)

        env.process(proc(), "p")
        assert env.run(until=35) == 35
        assert env.now == 35

    def test_run_until_resumes_without_losing_events(self):
        env = Environment()
        hits = []

        def proc():
            for _ in range(10):
                yield env.timeout(10)
                hits.append(env.now)

        env.process(proc(), "p")
        assert env.run(until=35) == 35
        assert hits == [10, 20, 30]
        # the t=40 event must still be on the heap: resuming completes
        # the run instead of deadlocking on the dropped wakeup
        assert env.run() == 100
        assert hits == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_run_until_fires_events_at_the_horizon(self):
        env = Environment()
        hits = []

        def proc():
            yield env.timeout(5)
            hits.append(env.now)
            yield env.timeout(5)
            hits.append(env.now)

        env.process(proc(), "p")
        assert env.run(until=10) == 10
        assert hits == [5, 10]

    def test_run_until_repeated_resume_matches_unbounded_run(self):
        def build():
            env = Environment()
            log = []

            def worker(delay, count):
                for _ in range(count):
                    yield env.timeout(delay)
                    log.append((env.now, delay))

            env.process(worker(3, 5), "w3")
            env.process(worker(7, 3), "w7")
            return env, log

        env_a, log_a = build()
        env_a.run()
        env_b, log_b = build()
        for horizon in (4, 9, 13, 100):
            env_b.run(until=horizon)
        assert log_b == log_a

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)


class TestDeadlockDetection:
    def test_waiting_forever_is_deadlock(self):
        env = Environment()
        never = env.event("never")

        def proc():
            yield never

        env.process(proc(), "stuck")
        with pytest.raises(DeadlockError) as exc:
            env.run()
        assert "stuck" in str(exc.value)

    def test_clean_termination_is_not_deadlock(self):
        env = Environment()

        def proc():
            yield env.timeout(1)

        env.process(proc(), "ok")
        env.run()  # no exception

    def test_deadlock_message_counts_and_sorts_blocked(self):
        env = Environment()
        never = env.event("never")

        def proc():
            yield never

        # registration order is deliberately unsorted
        for name in ("zeta", "alpha", "mid"):
            env.process(proc(), name)
        with pytest.raises(DeadlockError) as exc:
            env.run()
        message = str(exc.value)
        assert "3 blocked processes" in message
        assert message.index("alpha") < message.index("mid") < message.index("zeta")
        assert exc.value.blocked == sorted(exc.value.blocked)

    def test_deadlock_message_singular(self):
        env = Environment()

        def proc():
            yield env.event("never")

        env.process(proc(), "only")
        with pytest.raises(DeadlockError, match=r"1 blocked process: only"):
            env.run()


class TestFifoChannel:
    def test_put_then_get(self):
        env = Environment()
        ch = FifoChannel(env, 2, "c")
        got = []

        def producer():
            yield ch.put("a")
            yield ch.put("b")

        def consumer():
            yield env.timeout(1)
            yield ch.when_nonempty()
            got.append(ch.pop())
            yield ch.when_nonempty()
            got.append(ch.pop())

        env.process(producer(), "p")
        env.process(consumer(), "c")
        env.run()
        assert got == ["a", "b"]

    def test_put_blocks_when_full(self):
        env = Environment()
        ch = FifoChannel(env, 1, "c")
        times = []

        def producer():
            yield ch.put(1)
            times.append(env.now)  # accepted immediately
            yield ch.put(2)
            times.append(env.now)  # accepted only after the pop at t=5

        def consumer():
            yield env.timeout(5)
            yield ch.when_nonempty()
            ch.pop()

        env.process(producer(), "p")
        env.process(consumer(), "c")
        env.run()
        assert times == [0, 5]

    def test_get_blocks_until_data(self):
        env = Environment()
        ch = FifoChannel(env, 4, "c")
        when = []

        def producer():
            yield env.timeout(7)
            yield ch.put("x")

        def consumer():
            yield ch.when_nonempty()
            ch.pop()
            when.append(env.now)

        env.process(producer(), "p")
        env.process(consumer(), "c")
        env.run()
        assert when == [7]

    def test_capacity_one_lockstep(self):
        env = Environment()
        ch = FifoChannel(env, 1, "c")
        order = []

        def producer():
            for i in range(3):
                yield ch.put(i)
                order.append(("put", i, env.now))

        def consumer():
            for _ in range(3):
                yield ch.when_nonempty()
                order.append(("pop", ch.pop(), env.now))
                yield env.timeout(2)

        env.process(producer(), "p")
        env.process(consumer(), "c")
        env.run()
        assert ch.max_occupancy == 1
        assert ch.total_put == ch.total_popped == 3

    def test_two_consumers_rejected(self):
        env = Environment()
        ch = FifoChannel(env, 1, "c")
        ch.when_nonempty()
        with pytest.raises(SimulationError):
            ch.when_nonempty()

    def test_pop_empty_rejected(self):
        env = Environment()
        ch = FifoChannel(env, 1, "c")
        with pytest.raises(SimulationError):
            ch.pop()

    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            FifoChannel(env, 0, "c")


class TestMemoryStream:
    def test_always_ready_without_event(self):
        env = Environment()
        mem = MemoryStream(env, None, "m")
        hits = []

        def proc():
            yield mem.when_nonempty()
            mem.pop()
            hits.append(env.now)

        env.process(proc(), "p")
        env.run()
        assert hits == [0]

    def test_waits_for_ready_event(self):
        env = Environment()
        ready = env.event("ready")
        mem = MemoryStream(env, ready, "m")
        hits = []

        def producer():
            yield env.timeout(9)
            ready.trigger()

        def consumer():
            yield mem.when_nonempty()
            mem.pop()
            hits.append(env.now)

        env.process(producer(), "p")
        env.process(consumer(), "c")
        env.run()
        assert hits == [9]
