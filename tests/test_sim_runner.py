"""Integration tests: DES execution of streaming schedules."""

import pytest

from repro import CanonicalGraph, schedule_streaming
from repro.graphs import random_canonical_graph
from repro.sim import simulate_schedule

from conftest import build_elementwise_chain


class TestExactness:
    def test_elementwise_chain_exact(self):
        g = build_elementwise_chain(6, 24)
        s = schedule_streaming(g, 8, "rlx")
        sim = simulate_schedule(s)
        assert sim.makespan == s.makespan
        assert sim.finish_times == {v: s.times[v].lo for v in g.nodes}

    def test_multi_block_chain_exact(self):
        g = build_elementwise_chain(6, 24)
        s = schedule_streaming(g, 2, "rlx")
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        assert sim.makespan == s.makespan

    def test_rates_exact(self):
        g = CanonicalGraph()
        g.add_task(0, 32, 32)
        g.add_task(1, 32, 4)
        g.add_task(2, 4, 32)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        s = schedule_streaming(g, 4)
        sim = simulate_schedule(s)
        assert sim.makespan == s.makespan

    @pytest.mark.parametrize("topo,size", [("chain", 8), ("fft", 8), ("gaussian", 8)])
    def test_synthetic_no_deadlock_and_tight(self, topo, size):
        for seed in range(5):
            g = random_canonical_graph(topo, size, seed=seed)
            for p in (4, 16):
                s = schedule_streaming(g, p, "rlx")
                sim = simulate_schedule(s)
                assert not sim.deadlocked
                err = abs(sim.relative_error(s.makespan))
                assert err < 0.15, (topo, seed, p, err)


class TestPolicies:
    def test_barrier_at_least_as_slow_as_pe(self):
        for seed in range(3):
            g = random_canonical_graph("gaussian", 8, seed=seed)
            s = schedule_streaming(g, 8, "rlx")
            barrier = simulate_schedule(s, policy="barrier")
            pe = simulate_schedule(s, policy="pe")
            dataflow = simulate_schedule(s, policy="dataflow")
            assert not barrier.deadlocked
            assert not pe.deadlocked
            assert not dataflow.deadlocked
            assert dataflow.makespan <= barrier.makespan
            assert pe.makespan <= barrier.makespan

    def test_greedy_never_slower_than_steady(self):
        for seed in range(3):
            g = random_canonical_graph("fft", 8, seed=seed)
            s = schedule_streaming(g, 16, "rlx")
            steady = simulate_schedule(s, pacing="steady")
            greedy = simulate_schedule(s, pacing="greedy")
            assert not greedy.deadlocked
            assert greedy.makespan <= steady.makespan


class TestDeadlockScenarios:
    def test_raise_on_deadlock_flag(self, fig9_graph1):
        from repro.sim import DeadlockError

        s = schedule_streaming(fig9_graph1, 8)
        with pytest.raises(DeadlockError):
            simulate_schedule(s, capacity_override=1, raise_on_deadlock=True)

    def test_deadlock_reports_blocked_processes(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, 8)
        sim = simulate_schedule(s, capacity_override=1)
        assert sim.deadlocked
        assert sim.blocked  # names of the stuck tasks

    def test_single_pe_blocks_cannot_deadlock(self, fig9_graph1):
        """With one task per block everything is memory-backed."""
        s = schedule_streaming(fig9_graph1, 1)
        sim = simulate_schedule(s, capacity_override=1)
        assert not sim.deadlocked


class TestWithPassiveNodes:
    def test_source_buffer_sink_pipeline(self):
        g = CanonicalGraph()
        g.add_source("src", 16)
        g.add_task("a", 16, 16)
        g.add_buffer("B", 16, 16)
        g.add_task("b", 16, 16)
        g.add_sink("out", 16)
        for e in [("src", "a"), ("a", "B"), ("B", "b"), ("b", "out")]:
            g.add_edge(*e)
        s = schedule_streaming(g, 4)
        sim = simulate_schedule(s)
        assert not sim.deadlocked
        # buffer forces serialization: a ends at 16, b ends at 32
        assert sim.finish_times["b"] == s.times["b"].lo == 32

    def test_weights_preloaded(self):
        g = CanonicalGraph()
        g.add_buffer("W", 8, 8)
        g.add_task("e", 8, 8)
        g.add_edge("W", "e")
        s = schedule_streaming(g, 2)
        sim = simulate_schedule(s)
        assert sim.finish_times["e"] == 8
