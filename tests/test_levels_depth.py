"""Unit tests for levels, work, critical paths and streaming depth."""

from fractions import Fraction

import pytest

from repro import CanonicalGraph, critical_path_length, streaming_depth, total_work
from repro.core.depth import streaming_depth_bound, wcc_depth_bound
from repro.core.levels import bottom_levels, node_levels, num_levels

from conftest import build_elementwise_chain


class TestLevels:
    def test_chain_levels(self, ew_chain):
        levels = node_levels(ew_chain)
        assert [levels[i] for i in range(8)] == list(range(1, 9))
        assert num_levels(ew_chain) == 8

    def test_upsampler_adds_rate(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("u", 4, 16)  # rate 4
        g.add_edge("a", "u")
        levels = node_levels(g)
        assert levels["u"] == 1 + 4

    def test_downsampler_adds_one(self):
        g = CanonicalGraph()
        g.add_task("a", 16, 16)
        g.add_task("d", 16, 4)
        g.add_edge("a", "d")
        assert node_levels(g)["d"] == 2

    def test_join_takes_max(self, diamond):
        levels = node_levels(diamond)
        assert levels[3] == 3


class TestWork:
    def test_total_work_chain(self, ew_chain):
        assert total_work(ew_chain) == 8 * 32

    def test_critical_path_single_chain_equals_work(self, ew_chain):
        assert critical_path_length(ew_chain) == 8 * 32

    def test_critical_path_diamond(self, diamond):
        # 0 -> branch -> 3: three tasks of work 16 on any path
        assert critical_path_length(diamond) == 3 * 16

    def test_bottom_levels_decrease_along_edges(self, diamond):
        bl = bottom_levels(diamond)
        for u, v in diamond.edges:
            assert bl[u] > bl[v]


class TestStreamingDepth:
    def test_elementwise_chain_formula(self):
        """Section 4.2.1: T_s_inf = k + L(G) - 1 for element-wise graphs."""
        for n, k in [(4, 8), (8, 32), (1, 5), (3, 1)]:
            g = build_elementwise_chain(n, k)
            assert streaming_depth(g) == k + n - 1

    def test_downsampler_graph_formula(self):
        """Section 4.2.2: T_s_inf = max W + L(G) - 1."""
        g = CanonicalGraph()
        g.add_task(0, 32, 32)
        g.add_task(1, 32, 8)
        g.add_task(2, 8, 8)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert streaming_depth(g) == 32 + 3 - 1

    def test_buffered_stages_serialize(self):
        """A buffer forces the downstream stage to start after the
        upstream finishes: depth ~ doubles for two equal stages."""
        g = CanonicalGraph()
        g.add_task("a", 32, 32)
        g.add_buffer("B", 32, 32)
        g.add_task("b", 32, 32)
        g.add_edge("a", "B")
        g.add_edge("B", "b")
        # stage 1 ends at 32; buffer ready 32; stage 2 reads 32 more
        assert streaming_depth(g) == 64

    def test_depth_bound_dominates_exact_asymptotically(self):
        """Equation (4) / T_inf(H) bounds the streaming depth up to
        rounding: the bound is exact as volumes go to infinity, while the
        exact recurrence applies a ceiling per node (at most +1 each)."""
        from repro.graphs import random_canonical_graph

        for topo in ("chain", "fft"):
            for seed in range(5):
                g = random_canonical_graph(topo, 8 if topo == "chain" else 8, seed=seed)
                assert streaming_depth(g) <= streaming_depth_bound(g) + len(g)

    def test_wcc_bound_single_chain(self, ew_chain):
        members = set(ew_chain.nodes)
        assert wcc_depth_bound(ew_chain, members) == Fraction(8 + 32)
