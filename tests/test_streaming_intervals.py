"""Unit tests for Theorem 4.1 — streaming interval computation."""

from fractions import Fraction

import pytest

from repro import CanonicalGraph, compute_streaming_intervals


class TestBasics:
    def test_elementwise_chain_all_one(self, ew_chain):
        iv = compute_streaming_intervals(ew_chain)
        for v in ew_chain.nodes:
            assert iv.so[v] == 1
            assert iv.si[v] == 1

    def test_figure6_upsampler(self):
        """Figure 6: u -(K)-> v, v a rate-4 upsampler -> s(u,v) = 4."""
        g = CanonicalGraph()
        g.add_task("u", 8, 8)
        g.add_task("v", 8, 32)
        g.add_edge("u", "v")
        iv = compute_streaming_intervals(g)
        assert iv.so["u"] == 4
        assert iv.si["v"] == 4
        assert iv.so["v"] == 1
        assert iv.edge_interval(g, "u", "v") == 4

    def test_downsampler_output_slower(self):
        g = CanonicalGraph()
        g.add_task("a", 32, 32)
        g.add_task("d", 32, 4)
        g.add_edge("a", "d")
        iv = compute_streaming_intervals(g)
        assert iv.so["a"] == 1
        assert iv.so["d"] == 8  # 32 / 4

    def test_equation2_relation(self):
        """S_o(v) == S_i(v) / R(v) for every computational node."""
        g = CanonicalGraph()
        g.add_task("a", 6, 6)
        g.add_task("b", 6, 4)
        g.add_task("c", 4, 12)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        iv = compute_streaming_intervals(g)
        for v in g.nodes:
            spec = g.spec(v)
            assert iv.so[v] == iv.si[v] / spec.production_rate

    def test_fractional_intervals(self):
        g = CanonicalGraph()
        g.add_task("a", 3, 3)
        g.add_task("b", 3, 2)
        g.add_edge("a", "b")
        iv = compute_streaming_intervals(g)
        assert iv.so["b"] == Fraction(3, 2)

    def test_intervals_at_least_one(self):
        """Equation (1): no edge can stream faster than one per cycle."""
        g = CanonicalGraph()
        g.add_task("a", 4, 16)
        g.add_task("b", 16, 16)
        g.add_edge("a", "b")
        iv = compute_streaming_intervals(g)
        assert all(s >= 1 for s in iv.so.values())
        assert all(s >= 1 for s in iv.si.values())


class TestBufferSeparation:
    def test_buffer_isolates_steady_states(self):
        """A buffer decouples the producer's WCC from the consumer's.

        The upstream side has max volume 32, the downstream only 8; the
        consumer after the buffer must not be paced by the upstream 32.
        """
        g = CanonicalGraph()
        g.add_task("up", 32, 32)
        g.add_task("d", 32, 8)
        g.add_buffer("B", 8, 8)
        g.add_task("down", 8, 8)
        g.add_edge("up", "d")
        g.add_edge("d", "B")
        g.add_edge("B", "down")
        iv = compute_streaming_intervals(g)
        assert iv.so["up"] == 1
        assert iv.so["d"] == 4  # paced by upstream volume 32
        assert iv.so["down"] == 1  # fresh steady state after the buffer
        assert iv.so["B"] == 1
        assert iv.si["B"] == 4  # tail side belongs to the upstream WCC

    def test_wcc_max_volumes_recorded(self, ew_chain):
        iv = compute_streaming_intervals(ew_chain)
        assert iv.wcc_max_volume == (32,)


class TestMultiInput:
    def test_join_shares_input_interval(self, diamond):
        iv = compute_streaming_intervals(diamond)
        assert iv.si[3] == 1
        assert iv.so[0] == 1

    def test_source_volume_dominates(self):
        """Lemma 4.3: O(v) * S_o(v) is constant inside a WCC."""
        g = CanonicalGraph()
        g.add_task("a", 16, 16)
        g.add_task("u", 16, 64)
        g.add_task("e", 64, 64)
        g.add_edge("a", "u")
        g.add_edge("u", "e")
        iv = compute_streaming_intervals(g)
        const = {
            v: g.spec(v).output_volume * iv.so[v] for v in g.nodes
        }
        assert len(set(const.values())) == 1
        assert next(iter(const.values())) == 64


class TestBlockSourceExtension:
    def test_entry_downsampler_input_counts(self):
        """A downsampler reading memory cannot emit faster than it reads:
        its I(v) participates in the WCC constant (DESIGN.md, item 2)."""
        g = CanonicalGraph()
        g.add_task("d", 32, 4)  # entry node, reads 32 from memory
        g.add_task("e", 4, 4)
        g.add_edge("d", "e")
        iv = compute_streaming_intervals(g)
        assert iv.si["d"] == 1
        assert iv.so["d"] == 8
        assert iv.si["e"] == 8
