"""Unit tests for graph/schedule serialization and trace export."""

import json

import pytest

from repro import CanonicalGraph, schedule_streaming
from repro.core.serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
    schedule_to_chrome_trace,
    schedule_to_dict,
)
from repro.graphs import random_canonical_graph


class TestGraphRoundTrip:
    def test_simple_round_trip(self, fig9_graph1):
        doc = graph_to_dict(fig9_graph1)
        clone = graph_from_dict(doc)
        assert set(clone.nodes) == set(fig9_graph1.nodes)
        assert set(clone.edges) == set(fig9_graph1.edges)
        for v in clone.nodes:
            assert clone.spec(v).input_volume == fig9_graph1.spec(v).input_volume
            assert clone.spec(v).output_volume == fig9_graph1.spec(v).output_volume

    def test_tuple_names_survive(self):
        """Synthetic generators use tuple node ids; JSON has no tuples."""
        g = random_canonical_graph("cholesky", 4, seed=0)
        doc = json.loads(json.dumps(graph_to_dict(g)))  # force JSON types
        clone = graph_from_dict(doc)
        assert set(clone.nodes) == set(g.nodes)

    def test_passive_kinds_survive(self):
        g = CanonicalGraph()
        g.add_source("s", 8)
        g.add_task("e", 8, 8)
        g.add_buffer("B", 8, 8)
        g.add_sink("t", 8)
        for e in [("s", "e"), ("e", "B"), ("B", "t")]:
            g.add_edge(*e)
        clone = graph_from_dict(graph_to_dict(g))
        assert clone.kind("s").value == "source"
        assert clone.kind("B").value == "buffer"

    def test_file_round_trip(self, tmp_path, fig9_graph2):
        path = tmp_path / "g.json"
        save_graph(fig9_graph2, str(path))
        clone = load_graph(str(path))
        assert set(clone.edges) == set(fig9_graph2.edges)

    def test_schedule_equivalence_after_round_trip(self, fig9_graph1):
        clone = graph_from_dict(graph_to_dict(fig9_graph1))
        a = schedule_streaming(fig9_graph1, 8)
        b = schedule_streaming(clone, 8)
        assert a.makespan == b.makespan
        assert a.buffer_sizes == b.buffer_sizes

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format": "something-else", "version": 1})
        with pytest.raises(ValueError):
            graph_from_dict({"format": "canonical-task-graph", "version": 99})


class TestScheduleExport:
    def test_schedule_dict_fields(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        doc = schedule_to_dict(s)
        assert doc["makespan"] == s.makespan
        assert len(doc["tasks"]) == 5
        by_name = {t["name"]: t for t in doc["tasks"]}
        assert by_name[0]["lo"] == 32
        caps = {(f["src"], f["dst"]): f["capacity"] for f in doc["fifo_sizes"]}
        assert caps[(0, 4)] == 18

    def test_dict_is_json_serializable(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, 8)
        json.dumps(schedule_to_dict(s))  # must not raise

    def test_chrome_trace_shape(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        events = schedule_to_chrome_trace(s)
        task_events = [e for e in events if e["tid"] >= 0]
        block_events = [e for e in events if e["tid"] == -1]
        assert len(task_events) == 5
        assert len(block_events) == s.num_blocks
        for e in task_events:
            assert e["ph"] == "X"
            assert e["dur"] >= 1
        json.dumps(events)  # valid trace JSON
