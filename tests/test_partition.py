"""Unit tests for spatial block partitioning (Algorithm 1 / Algorithm 2)."""

import pytest

from repro import CanonicalGraph, compute_spatial_blocks
from repro.core.partition import partition_by_work
from repro.graphs import random_canonical_graph

from conftest import build_elementwise_chain


class TestBasics:
    def test_single_block_when_enough_pes(self, ew_chain):
        for variant in ("lts", "rlx"):
            p = compute_spatial_blocks(ew_chain, 8, variant)
            assert p.num_blocks == 1
            p.validate(ew_chain, 8)

    def test_capacity_respected(self, ew_chain):
        p = compute_spatial_blocks(ew_chain, 3, "rlx")
        assert all(len(b) <= 3 for b in p.blocks)
        p.validate(ew_chain, 3)

    def test_rlx_fills_blocks(self, ew_chain):
        p = compute_spatial_blocks(ew_chain, 3, "rlx")
        assert [len(b) for b in p.blocks[:-1]] == [3, 3]

    def test_every_task_assigned_once(self, diamond):
        p = compute_spatial_blocks(diamond, 2, "lts")
        seen = [v for b in p.blocks for v in b]
        assert sorted(seen) == sorted(diamond.computational_nodes())

    def test_invalid_pes_rejected(self, ew_chain):
        with pytest.raises(ValueError):
            compute_spatial_blocks(ew_chain, 0)

    def test_invalid_variant_rejected(self, ew_chain):
        with pytest.raises(ValueError):
            compute_spatial_blocks(ew_chain, 4, "bogus")


class TestLtsSemantics:
    def test_big_upsampler_pushed_out(self):
        """SB-LTS must not slow a block source with a larger producer:
        the 4->64 upsampler producing more than the source goes to the
        next block even though a PE is free."""
        g = CanonicalGraph()
        g.add_task("src", 8, 8)
        g.add_task("up", 8, 64)
        g.add_edge("src", "up")
        p = compute_spatial_blocks(g, 4, "lts")
        assert p.num_blocks == 2
        assert p.block_of["src"] == 0
        assert p.block_of["up"] == 1

    def test_rlx_admits_big_upsampler(self):
        g = CanonicalGraph()
        g.add_task("src", 8, 8)
        g.add_task("up", 8, 64)
        g.add_edge("src", "up")
        p = compute_spatial_blocks(g, 4, "rlx")
        assert p.num_blocks == 1

    def test_equal_volume_stays(self):
        g = CanonicalGraph()
        g.add_task("src", 8, 8)
        g.add_task("e", 8, 8)
        g.add_edge("src", "e")
        p = compute_spatial_blocks(g, 4, "lts")
        assert p.num_blocks == 1

    def test_independent_node_becomes_block_source(self):
        """A ready node with no in-block dependence is always eligible."""
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_task("big", 64, 64)  # independent, larger volume
        p = compute_spatial_blocks(g, 4, "lts")
        assert p.num_blocks == 1

    def test_lts_never_more_blocks_than_tasks(self):
        for seed in range(5):
            g = random_canonical_graph("gaussian", 8, seed=seed)
            p = compute_spatial_blocks(g, 4, "lts")
            assert p.num_blocks <= g.num_tasks()
            p.validate(g, 4)

    def test_rlx_block_count_minimal(self):
        """SB-RLX produces ceil(N / P) blocks (all full except the last)."""
        for seed in range(5):
            g = random_canonical_graph("fft", 16, seed=seed)
            n = g.num_tasks()
            p = compute_spatial_blocks(g, 16, "rlx")
            assert p.num_blocks == -(-n // 16)

    def test_lts_at_least_as_many_blocks_as_rlx(self):
        for seed in range(5):
            g = random_canonical_graph("cholesky", 6, seed=seed)
            lts = compute_spatial_blocks(g, 16, "lts")
            rlx = compute_spatial_blocks(g, 16, "rlx")
            assert lts.num_blocks >= rlx.num_blocks


class TestPassiveNodes:
    def test_passives_tracked_but_not_counted(self):
        g = CanonicalGraph()
        g.add_source("s", 8)
        g.add_task("e", 8, 8)
        g.add_buffer("B", 8, 8)
        g.add_task("f", 8, 8)
        g.add_sink("t", 8)
        for e in [("s", "e"), ("e", "B"), ("B", "f"), ("f", "t")]:
            g.add_edge(*e)
        p = compute_spatial_blocks(g, 2, "lts")
        assert p.num_blocks == 1
        assert sum(len(b) for b in p.blocks) == 2  # only e, f occupy PEs
        for v in ("s", "B", "t"):
            assert v in p.block_of

    def test_no_backwards_passive_edges(self):
        from repro.ml import build_transformer_encoder

        enc = build_transformer_encoder(seq_len=16, d_model=32, num_heads=2, d_ff=64,
                                        max_parallel=8)
        p = compute_spatial_blocks(enc, 16, "lts")
        for u, v in enc.edges:
            assert p.block_of[u] <= p.block_of[v]


class TestWorkPartitioning:
    def test_blocks_grouped_by_work(self):
        """Appendix Algorithm 2: non-increasing work across blocks."""
        g = build_elementwise_chain(6, 16)
        p = partition_by_work(g, 2)
        assert p.num_blocks == 3
        p.validate(g, 2)

    def test_work_order_nonincreasing(self):
        g = CanonicalGraph()
        # three stages of decreasing work: 32 -> 8 -> 2
        g.add_task("a", 32, 32)
        g.add_task("d1", 32, 8)
        g.add_task("d2", 8, 2)
        g.add_edge("a", "d1")
        g.add_edge("d1", "d2")
        p = partition_by_work(g, 1)
        works = [g.spec(b[0]).work for b in p.blocks]
        assert works == sorted(works, reverse=True)
