"""Unit tests for buffer splitting and WCC decomposition (Section 4.1)."""

import networkx as nx
import pytest

from repro import CanonicalGraph
from repro.core.transform import (
    BufferHalf,
    check_buffer_placement,
    component_dag,
    original_members,
    split_buffers,
    weakly_connected_components,
)


@pytest.fixture
def buffered_chain() -> CanonicalGraph:
    """e0 -> e1 -> B -> e2 -> e3 with volumes 8 throughout."""
    g = CanonicalGraph()
    g.add_task("e0", 8, 8)
    g.add_task("e1", 8, 8)
    g.add_buffer("B", 8, 8)
    g.add_task("e2", 8, 8)
    g.add_task("e3", 8, 8)
    for e in [("e0", "e1"), ("e1", "B"), ("B", "e2"), ("e2", "e3")]:
        g.add_edge(*e)
    return g


class TestSplitBuffers:
    def test_buffer_becomes_two_halves(self, buffered_chain):
        split = split_buffers(buffered_chain)
        assert BufferHalf("B", "tail") in split
        assert BufferHalf("B", "head") in split
        assert "B" not in split

    def test_no_edge_between_halves(self, buffered_chain):
        split = split_buffers(buffered_chain)
        assert not split.has_edge(BufferHalf("B", "tail"), BufferHalf("B", "head"))

    def test_edges_rewired(self, buffered_chain):
        split = split_buffers(buffered_chain)
        assert split.has_edge("e1", BufferHalf("B", "tail"))
        assert split.has_edge(BufferHalf("B", "head"), "e2")

    def test_bufferless_graph_unchanged(self, ew_chain):
        split = split_buffers(ew_chain)
        assert set(split.nodes) == set(ew_chain.nodes)
        assert set(split.edges) == set(ew_chain.edges)


class TestWccDecomposition:
    def test_buffer_splits_components(self, buffered_chain):
        comps = weakly_connected_components(buffered_chain)
        assert len(comps) == 2
        members = [original_members(c) for c in comps]
        assert {"e0", "e1", "B"} in members
        assert {"e2", "e3", "B"} in members

    def test_single_component_without_buffers(self, ew_chain):
        assert len(weakly_connected_components(ew_chain)) == 1

    def test_parallel_branches_join(self, diamond):
        assert len(weakly_connected_components(diamond)) == 1


class TestComponentDag:
    def test_linear_buffer_chain(self, buffered_chain):
        dag = component_dag(buffered_chain)
        assert dag.number_of_nodes() == 2
        assert dag.number_of_edges() == 1
        assert nx.is_directed_acyclic_graph(dag)

    def test_valid_placement_passes(self, buffered_chain):
        check_buffer_placement(buffered_chain)

    def test_cycle_through_buffer_rejected(self):
        # e0 -> B -> e1 and e0 -> e1 directly: tail and head WCCs merge
        # through the direct edge, so the supernode graph has a self-loop
        g = CanonicalGraph()
        g.add_task("e0", 8, 8)
        g.add_buffer("B", 8, 8)
        g.add_task("e1", 8, 8)
        g.add_edge("e0", "B")
        g.add_edge("B", "e1")
        g.add_edge("e0", "e1")
        with pytest.raises(Exception):
            check_buffer_placement(g)
