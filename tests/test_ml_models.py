"""Tests for the ResNet-50 / transformer canonical graph builders."""

import pytest

from repro import schedule_streaming, speedup
from repro.baselines import schedule_nonstreaming
from repro.ml import build_resnet50, build_transformer_encoder


@pytest.fixture(scope="module")
def tiny_resnet():
    return build_resnet50(image_size=32, max_parallel=16)


@pytest.fixture(scope="module")
def tiny_encoder():
    return build_transformer_encoder(
        seq_len=16, d_model=64, num_heads=4, d_ff=128, max_parallel=16
    )


class TestResnet:
    def test_graph_is_canonical(self, tiny_resnet):
        tiny_resnet.validate()

    def test_has_expected_operator_mix(self, tiny_resnet):
        labels = {tiny_resnet.spec(v).label for v in tiny_resnet.nodes}
        for op in ("conv", "batchnorm", "relu", "add", "maxpool", "gap", "matmul"):
            assert op in labels, op

    def test_single_input_single_output(self, tiny_resnet):
        from repro import NodeKind

        sources = [v for v in tiny_resnet.nodes if tiny_resnet.kind(v) is NodeKind.SOURCE]
        sinks = [v for v in tiny_resnet.nodes if tiny_resnet.kind(v) is NodeKind.SINK]
        assert len(sources) == 1
        assert len(sinks) == 1

    def test_conv_count(self, tiny_resnet):
        """ResNet-50 has 53 convolutions (incl. projections) + 1 FC."""
        im2cols = [v for v in tiny_resnet.nodes if str(v).endswith(".im2col")]
        assert len(im2cols) == 53

    def test_schedulable(self, tiny_resnet):
        s = schedule_streaming(tiny_resnet, 64, "lts", size_buffers=False)
        s.partition.validate(tiny_resnet, 64)
        assert s.makespan > 0


class TestEncoder:
    def test_graph_is_canonical(self, tiny_encoder):
        tiny_encoder.validate()

    def test_softmax_per_head(self, tiny_encoder):
        divs = [v for v in tiny_encoder.nodes if str(v).endswith(".div")]
        assert len(divs) == 4  # one softmax per head

    def test_schedulable(self, tiny_encoder):
        s = schedule_streaming(tiny_encoder, 32, "lts", size_buffers=False)
        assert s.makespan > 0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            build_transformer_encoder(seq_len=8, d_model=30, num_heads=4)


class TestTable2Shape:
    """The headline Table 2 claim on scaled-down models: streaming beats
    the buffered baseline and the gain grows with the PE count."""

    def test_streaming_wins_and_gain_grows(self, tiny_encoder):
        gains = []
        for p in (32, 128):
            s = schedule_streaming(tiny_encoder, p, "lts", size_buffers=False)
            ns = schedule_nonstreaming(tiny_encoder, p)
            gains.append(ns.makespan / s.makespan)
        assert gains[0] > 1.0
        assert gains[1] >= gains[0] * 0.95  # non-decreasing (tolerance)

    def test_resnet_gain_grows_and_crosses_one(self, tiny_resnet):
        """At this tiny scale the crossover sits at high P; the paper's
        trend (streaming gain grows with the PE count) must hold and the
        gain must exceed 1 once PEs outnumber the graph's width."""
        gains = []
        for p in (16, 64, 128):
            s = schedule_streaming(tiny_resnet, p, "lts", size_buffers=False)
            ns = schedule_nonstreaming(tiny_resnet, p)
            gains.append(ns.makespan / s.makespan)
        assert gains == sorted(gains)
        assert gains[-1] > 1.0
        assert speedup(tiny_resnet, 1) > 0  # keep the import exercised
