"""Every example script must run cleanly (they are the public demos)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "makespan" in out
        assert "error +0.0%" in out

    def test_deadlock_buffers_reproduces_paper_numbers(self):
        out = run_example("deadlock_buffers.py")
        assert "(0, 4): 18" in out
        assert "(4, 5): 32" in out
        assert "deadlocked: True" in out

    def test_matmul_variants(self):
        out = run_example("matmul_variants.py")
        for variant in ("inner", "cols", "ksplit"):
            assert variant in out

    def test_operators_tour(self):
        out = run_example("operators_tour.py")
        assert "Outer product" in out
        assert "Softmax" in out

    def test_placement_noc(self):
        out = run_example("placement_noc.py")
        assert "greedy" in out and "random" in out

    def test_synthetic_sweep_small(self):
        out = run_example("synthetic_sweep.py", "3")
        assert "chain" in out and "cholesky" in out

    @pytest.mark.slow
    def test_ml_inference(self):
        out = run_example("ml_inference.py")
        assert "encoder graph" in out
