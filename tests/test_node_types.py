"""Unit tests for the canonical node taxonomy."""

from fractions import Fraction

import pytest

from repro.core.node_types import (
    COMPUTATIONAL_KINDS,
    PASSIVE_KINDS,
    NodeKind,
    NodeSpec,
    classify_rate,
)


class TestClassifyRate:
    def test_elementwise(self):
        assert classify_rate(8, 8) is NodeKind.ELEMENTWISE

    def test_downsampler(self):
        assert classify_rate(8, 1) is NodeKind.DOWNSAMPLER

    def test_upsampler(self):
        assert classify_rate(2, 16) is NodeKind.UPSAMPLER

    def test_non_integer_ratio(self):
        assert classify_rate(3, 2) is NodeKind.DOWNSAMPLER
        assert classify_rate(2, 3) is NodeKind.UPSAMPLER

    @pytest.mark.parametrize("i,o", [(0, 5), (5, 0), (-1, 5), (5, -2)])
    def test_rejects_nonpositive(self, i, o):
        with pytest.raises(ValueError):
            classify_rate(i, o)


class TestNodeSpec:
    def test_production_rate_exact(self):
        spec = NodeSpec("d", NodeKind.DOWNSAMPLER, 3, 2)
        assert spec.production_rate == Fraction(2, 3)

    def test_rate_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec("x", NodeKind.UPSAMPLER, 8, 4)  # actually a downsampler

    def test_source_constraints(self):
        NodeSpec("s", NodeKind.SOURCE, 0, 8)
        with pytest.raises(ValueError):
            NodeSpec("s", NodeKind.SOURCE, 1, 8)
        with pytest.raises(ValueError):
            NodeSpec("s", NodeKind.SOURCE, 0, 0)

    def test_sink_constraints(self):
        NodeSpec("t", NodeKind.SINK, 8, 0)
        with pytest.raises(ValueError):
            NodeSpec("t", NodeKind.SINK, 8, 1)
        with pytest.raises(ValueError):
            NodeSpec("t", NodeKind.SINK, 0, 0)

    def test_buffer_needs_positive_volumes(self):
        NodeSpec("b", NodeKind.BUFFER, 4, 12)
        with pytest.raises(ValueError):
            NodeSpec("b", NodeKind.BUFFER, 0, 12)

    def test_source_has_no_production_rate(self):
        spec = NodeSpec("s", NodeKind.SOURCE, 0, 8)
        with pytest.raises(ValueError):
            _ = spec.production_rate

    def test_sink_rate_zero(self):
        assert NodeSpec("t", NodeKind.SINK, 8, 0).production_rate == 0

    def test_work_is_max_of_volumes(self):
        assert NodeSpec("e", NodeKind.ELEMENTWISE, 8, 8).work == 8
        assert NodeSpec("d", NodeKind.DOWNSAMPLER, 32, 4).work == 32
        assert NodeSpec("u", NodeKind.UPSAMPLER, 4, 32).work == 32

    def test_passive_work_is_zero(self):
        assert NodeSpec("b", NodeKind.BUFFER, 8, 8).work == 0
        assert NodeSpec("s", NodeKind.SOURCE, 0, 8).work == 0
        assert NodeSpec("t", NodeKind.SINK, 8, 0).work == 0


class TestKindSets:
    def test_partition_of_kinds(self):
        assert COMPUTATIONAL_KINDS | PASSIVE_KINDS == frozenset(NodeKind)
        assert not COMPUTATIONAL_KINDS & PASSIVE_KINDS

    def test_kind_properties(self):
        assert NodeKind.ELEMENTWISE.is_computational
        assert not NodeKind.BUFFER.is_computational
        assert NodeKind.BUFFER.is_passive
        assert not NodeKind.DOWNSAMPLER.is_passive
