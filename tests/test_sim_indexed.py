"""Tests for the array-state simulation engine.

Two layers of protection, mirroring tests/test_indexed.py:

* **golden differential equivalence** — the indexed engine must produce
  identical makespans, per-task start/finish times, deadlock verdicts
  and blocked-process sets to the process-based reference engine kept
  in :mod:`repro.sim.reference`, swept across the campaign graph
  families (layered / serpar, the paper topologies, a small ML graph),
  all three block policies, both pacing modes and deliberately
  undersized FIFOs;
* **unit tests** for the engine dispatch, the richer
  :class:`~repro.sim.engine.DeadlockError` diagnostics and the
  simulated-timeline trace exports.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import CanonicalGraph, schedule_streaming
from repro.graphs import random_canonical_graph
from repro.sim import (
    DeadlockError,
    simulate_schedule,
    simulate_schedule_indexed,
    simulate_schedule_reference,
    simulation_to_chrome_trace,
    simulation_to_dict,
)

from conftest import build_elementwise_chain


def assert_equivalent(schedule, **kwargs):
    """Both engines must agree on every semantically defined field."""
    a = simulate_schedule_indexed(schedule, **kwargs)
    b = simulate_schedule_reference(schedule, **kwargs)
    assert a.makespan == b.makespan
    assert a.deadlocked == b.deadlocked
    assert a.finish_times == b.finish_times
    assert a.start_times == b.start_times
    assert a.blocked == b.blocked
    assert a.deadlock_channels == b.deadlock_channels
    assert set(a.channel_stats) == set(b.channel_stats)
    for edge, (cap, occ) in a.channel_stats.items():
        ref_cap, ref_occ = b.channel_stats[edge]
        assert cap == ref_cap
        # the indexed engine reconstructs occupancy with pops winning
        # same-instant ties (the minimal consistent profile); the
        # reference may count a transient same-cycle race on top
        assert occ <= ref_occ <= cap
    return a


class TestGoldenDifferential:
    """Indexed vs reference: identical timing and deadlock behaviour."""

    @pytest.mark.parametrize("topo,size,pes", [
        ("layered", 64, 16),
        ("serpar", 60, 16),
        ("chain", 8, 8),
        ("fft", 8, 16),
        ("gaussian", 8, 16),
        ("cholesky", 8, 16),
    ])
    @pytest.mark.parametrize("variant", ["lts", "rlx"])
    def test_registry_sweep(self, topo, size, pes, variant):
        for seed in range(2):
            g = random_canonical_graph(topo, size, seed=seed)
            s = schedule_streaming(g, pes, variant)
            assert_equivalent(s)

    @pytest.mark.parametrize("policy", ["barrier", "pe", "dataflow"])
    def test_all_block_policies(self, policy):
        for topo, size in [("fft", 8), ("gaussian", 8), ("layered", 64)]:
            g = random_canonical_graph(topo, size, seed=3)
            s = schedule_streaming(g, 16, "rlx")
            assert_equivalent(s, policy=policy)

    @pytest.mark.parametrize("pacing", ["steady", "greedy"])
    def test_pacing_modes(self, pacing):
        g = random_canonical_graph("fft", 8, seed=1)
        s = schedule_streaming(g, 16, "lts")
        assert_equivalent(s, pacing=pacing)

    def test_work_variant(self):
        g = random_canonical_graph("gaussian", 8, seed=2)
        assert_equivalent(schedule_streaming(g, 8, "work"))

    def test_ml_transformer(self):
        from repro.ml import build_transformer_encoder

        g = build_transformer_encoder(
            seq_len=8, d_model=32, num_heads=2, d_ff=64, max_parallel=8
        )
        s = schedule_streaming(g, 8, "lts")
        r = assert_equivalent(s)
        assert not r.deadlocked

    def test_rate_converting_chain(self):
        g = CanonicalGraph()
        g.add_task(0, 32, 32)
        g.add_task(1, 32, 4)
        g.add_task(2, 4, 32)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        s = schedule_streaming(g, 4)
        r = assert_equivalent(s)
        assert r.makespan == s.makespan

    def test_passive_nodes_and_buffers(self):
        g = CanonicalGraph()
        g.add_source("src", 16)
        g.add_task("a", 16, 16)
        g.add_buffer("B", 16, 16)
        g.add_task("b", 16, 16)
        g.add_sink("out", 16)
        for e in [("src", "a"), ("a", "B"), ("B", "b"), ("b", "out")]:
            g.add_edge(*e)
        r = assert_equivalent(schedule_streaming(g, 4))
        assert r.finish_times["b"] == 32

    def test_multi_block_chain(self):
        s = schedule_streaming(build_elementwise_chain(6, 24), 2, "rlx")
        r = assert_equivalent(s)
        assert not r.deadlocked and r.makespan == s.makespan


class TestRandomizedDifferential:
    """Seeded sweep over graph families × policies × undersized FIFOs:
    parity on makespan, deadlock detection and blocked-process sets."""

    FAMILIES = [("layered", 48), ("serpar", 40), ("fft", 8), ("gaussian", 8)]

    def test_randomized_parity(self):
        rng = random.Random(20260726)
        cases = []
        for topo, size in self.FAMILIES:
            for _ in range(3):
                cases.append((
                    topo,
                    size,
                    rng.randrange(1000),
                    rng.choice([4, 8, 16]),
                    rng.choice(["lts", "rlx"]),
                    rng.choice(["barrier", "pe", "dataflow"]),
                    rng.choice([None, 1, 2]),
                ))
        deadlocks = 0
        for topo, size, seed, pes, variant, policy, cap in cases:
            g = random_canonical_graph(topo, size, seed=seed)
            s = schedule_streaming(g, pes, variant)
            r = assert_equivalent(s, policy=policy, capacity_override=cap)
            deadlocks += r.deadlocked
        # guarantee the sweep exercises the deadlock path too: the
        # Figure 9 graphs starve deterministically at capacity 1
        from conftest import build_fig9_graph1, build_fig9_graph2

        for build in (build_fig9_graph1, build_fig9_graph2):
            s = schedule_streaming(build(), 8)
            r = assert_equivalent(s, capacity_override=1)
            deadlocks += r.deadlocked
        assert deadlocks >= 2

    def test_undersized_fifos_deadlock_identically(self, fig9_graph1,
                                                   fig9_graph2):
        for g in (fig9_graph1, fig9_graph2):
            s = schedule_streaming(g, 8)
            sized = assert_equivalent(s)
            assert not sized.deadlocked
            starved = assert_equivalent(s, capacity_override=1)
            assert starved.deadlocked
            assert starved.blocked  # names + blocking ops, sorted
            # at-deadlock occupancies ride on the result (Figure 9
            # diagnostics without re-running under raise_on_deadlock)
            full = starved.full_channels()
            assert full and all(occ == cap for occ, cap in full.values())

    def test_blocked_strings_match_reference_format(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        r = simulate_schedule_indexed(s, capacity_override=1)
        assert any("(on " in entry and entry.startswith("task:")
                   for entry in r.blocked)
        assert r.blocked == sorted(r.blocked)


class TestDeadlockDiagnostics:
    def test_error_carries_channel_occupancy(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        for engine in ("indexed", "reference"):
            with pytest.raises(DeadlockError) as info:
                simulate_schedule(s, capacity_override=1,
                                  raise_on_deadlock=True, engine=engine)
            err = info.value
            assert err.channels  # every streaming FIFO reported
            for name, (occ, cap) in err.channels.items():
                assert "->" in name
                assert 0 <= occ <= cap == 1
            full = err.full_channels()
            assert full and all(occ == cap for occ, cap in full.values())

    def test_both_engines_report_identical_diagnostics(self, fig9_graph2):
        s = schedule_streaming(fig9_graph2, 8)
        errors = {}
        for engine in ("indexed", "reference"):
            with pytest.raises(DeadlockError) as info:
                simulate_schedule(s, capacity_override=1,
                                  raise_on_deadlock=True, engine=engine)
            errors[engine] = info.value
        assert errors["indexed"].time == errors["reference"].time
        assert errors["indexed"].blocked == errors["reference"].blocked
        assert errors["indexed"].channels == errors["reference"].channels

    def test_message_names_full_fifos(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        with pytest.raises(DeadlockError, match="FIFOs full"):
            simulate_schedule(s, capacity_override=1, raise_on_deadlock=True)

    def test_engine_error_without_channels_keeps_legacy_message(self):
        err = DeadlockError(5, ["task:a (on all_of)"])
        assert err.channels == {}
        assert "FIFOs" not in str(err)


class TestEngineDispatch:
    def test_default_engine_is_indexed(self, ew_chain):
        s = schedule_streaming(ew_chain, 4)
        default = simulate_schedule(s)
        explicit = simulate_schedule(s, engine="indexed")
        assert default.makespan == explicit.makespan
        assert default.finish_times == explicit.finish_times

    def test_reference_engine_selectable(self, ew_chain):
        s = schedule_streaming(ew_chain, 4)
        r = simulate_schedule(s, engine="reference")
        assert r.makespan == s.makespan

    def test_unknown_engine_rejected(self, ew_chain):
        s = schedule_streaming(ew_chain, 4)
        with pytest.raises(ValueError, match="unknown simulation engine"):
            simulate_schedule(s, engine="bogus")

    def test_capacity_must_be_positive(self, ew_chain):
        s = schedule_streaming(ew_chain, 2)
        with pytest.raises(ValueError, match="capacity"):
            simulate_schedule(s, capacity_override=0)

    def test_start_times_match_analytic_for_exact_chain(self):
        g = build_elementwise_chain(6, 24)
        s = schedule_streaming(g, 8, "rlx")
        r = simulate_schedule(s)
        assert r.start_times.keys() == r.finish_times.keys()
        for v, t in r.start_times.items():
            assert t <= r.finish_times[v]


class TestSimulationTrace:
    def _simulated(self):
        g = random_canonical_graph("fft", 8, seed=0)
        s = schedule_streaming(g, 8, "rlx")
        return s, simulate_schedule(s)

    def test_simulation_to_dict_schema(self):
        s, r = self._simulated()
        doc = simulation_to_dict(s, r)
        assert doc["format"] == "streaming-simulation"
        assert doc["makespan"] == r.makespan
        assert doc["analytic_makespan"] == s.makespan
        assert not doc["deadlocked"]
        comp = s.graph.computational_nodes()
        assert len(doc["tasks"]) == len(comp)
        for task, v in zip(doc["tasks"], comp):  # names JSON-encoded
            assert task["finish"] == r.finish_times[v]
            assert task["start"] == r.start_times[v]
        assert len(doc["channels"]) == len(r.channel_stats)
        json.dumps(doc)  # wire-serializable

    def test_trace_schema_matches_schedule_trace(self):
        s, r = self._simulated()
        events = simulation_to_chrome_trace(s, r)
        assert len(events) == len(r.finish_times)
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 1
            assert ev["cat"].startswith("block")
            assert ev["args"]["finish"] == ev["ts"] + ev["dur"] or \
                ev["args"]["finish"] == ev["ts"]  # zero-length task clamped
        json.dumps(events)

    def test_trace_marks_deadlocked_tasks(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        r = simulate_schedule(s, capacity_override=1)
        assert r.deadlocked
        events = simulation_to_chrome_trace(s, r)
        assert any(ev["args"].get("deadlocked") for ev in events)
