"""Tests for the integer-indexed scheduling core.

Two layers of protection:

* **golden-output equivalence** — the indexed hot path must produce
  *byte-identical* serialized schedules (times, PE/block assignment,
  FIFO capacities, makespan) to the pre-indexed reference implementation
  preserved in :mod:`repro.core.reference`, swept across the campaign
  scenario families (layered / serpar, the paper topologies, the ML
  graphs) and all three streaming variants;
* **unit tests** for the :class:`~repro.core.indexed.IndexedGraph`
  structure itself — CSR adjacency, topo/entry/exit memoization and
  invalidation, exact levels — plus edge cases: single node,
  disconnected entries, multi-rate CSDF phases in the flattened
  self-timed executor.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.core import (
    CanonicalGraph,
    node_levels,
    num_levels,
    schedule_streaming,
)
from repro.core.indexed import freeze
from repro.core.reference import (
    _node_levels as node_levels_reference,
    schedule_streaming_reference,
)
from repro.core.serialize import graph_from_dict, graph_to_dict, schedule_to_dict
from repro.graphs import random_canonical_graph


def schedule_bytes(schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), sort_keys=False)


def assert_golden(graph_a, graph_b, num_pes, variant) -> None:
    a = schedule_bytes(schedule_streaming(graph_a, num_pes, variant))
    b = schedule_bytes(schedule_streaming_reference(graph_b, num_pes, variant))
    assert a == b


class TestGoldenEquivalence:
    """Indexed vs reference: byte-identical serialized schedules."""

    @pytest.mark.parametrize("topo,size,pes", [
        ("layered", 64, 16),
        ("layered", 128, 64),
        ("layered", 400, 64),
        ("serpar", 60, 16),
        ("serpar", 120, 32),
        ("chain", 8, 8),
        ("fft", 32, 16),
        ("gaussian", 16, 32),
        ("cholesky", 8, 16),
    ])
    @pytest.mark.parametrize("variant", ["lts", "rlx", "work"])
    def test_registry_sweep(self, topo, size, pes, variant):
        for seed in range(2):
            g1 = random_canonical_graph(topo, size, seed=seed)
            g2 = random_canonical_graph(topo, size, seed=seed)
            assert_golden(g1, g2, pes, variant)

    @pytest.mark.parametrize("pes", [8, 64])
    def test_ml_resnet(self, pes):
        from repro.ml import build_resnet50

        g1 = build_resnet50(image_size=56, max_parallel=16)
        g2 = build_resnet50(image_size=56, max_parallel=16)
        assert_golden(g1, g2, pes, "lts")

    @pytest.mark.parametrize("pes", [8, 64])
    def test_ml_transformer(self, pes):
        from repro.ml import build_transformer_encoder

        g1 = build_transformer_encoder(seq_len=16, d_model=64, num_heads=4,
                                       d_ff=128, max_parallel=16)
        g2 = build_transformer_encoder(seq_len=16, d_model=64, num_heads=4,
                                       d_ff=128, max_parallel=16)
        assert_golden(g1, g2, pes, "rlx")

    def test_levels_match_reference(self):
        for topo, size in [("layered", 128), ("fft", 32), ("cholesky", 8)]:
            g = random_canonical_graph(topo, size, seed=3)
            assert node_levels(g) == node_levels_reference(g)

    def test_sequential_blocks_off_matches_reference(self):
        g1 = random_canonical_graph("gaussian", 12, seed=5)
        g2 = random_canonical_graph("gaussian", 12, seed=5)
        a = schedule_bytes(
            schedule_streaming(g1, 16, "rlx", sequential_blocks=False)
        )
        b = schedule_bytes(
            schedule_streaming_reference(g2, 16, "rlx", sequential_blocks=False)
        )
        assert a == b


class TestIndexedGraph:
    def test_csr_matches_nx_adjacency(self):
        g = random_canonical_graph("layered", 64, seed=0)
        ig = freeze(g)
        for name in g.nodes:
            i = ig.index[name]
            succs = [ig.names[j] for j in ig.succs(i)]
            preds = [ig.names[j] for j in ig.preds(i)]
            assert succs == list(g.successors(name))
            assert set(preds) == set(g.predecessors(name))
            assert ig.in_degree(i) == g.in_degree(name)
            assert ig.out_degree(i) == g.out_degree(name)

    def test_topo_entries_exits_num_tasks(self):
        g = random_canonical_graph("serpar", 60, seed=1)
        ig = freeze(g)
        assert [ig.names[i] for i in ig.topo] == g.topological_order()
        assert sorted(map(str, (ig.names[i] for i in ig.entries))) == \
            sorted(map(str, g.entry_nodes()))
        assert sorted(map(str, (ig.names[i] for i in ig.exits))) == \
            sorted(map(str, g.exit_nodes()))
        assert ig.num_tasks == g.num_tasks()

    def test_freeze_is_memoized_and_invalidated(self):
        g = CanonicalGraph()
        g.add_source("s", 4)
        g.add_task("t", 4, 4)
        g.add_edge("s", "t")
        ig1 = freeze(g)
        assert freeze(g) is ig1  # memoized
        g.add_task("u", 4, 2)
        g.add_edge("t", "u")
        ig2 = freeze(g)
        assert ig2 is not ig1  # mutation invalidated the cache
        assert ig2.n == 3

    def test_topological_order_cache_invalidation(self):
        g = CanonicalGraph()
        g.add_task("a", 2, 2)
        first = g.topological_order()
        assert first == ["a"]
        first.append("junk")  # caller mutation must not poison the cache
        assert g.topological_order() == ["a"]
        g.add_task("b", 2, 2)
        g.add_edge("a", "b")
        assert g.topological_order() == ["a", "b"]

    def test_single_node_graph(self):
        g = CanonicalGraph()
        g.add_task("only", 3, 3)
        ig = freeze(g)
        assert ig.n == 1 and ig.entries == [0] and ig.exits == [0]
        assert ig.num_tasks == 1
        s = schedule_streaming(g, 4)
        g2 = CanonicalGraph()
        g2.add_task("only", 3, 3)
        assert schedule_bytes(s) == schedule_bytes(
            schedule_streaming_reference(g2, 4)
        )

    def test_disconnected_entries(self):
        def build():
            g = CanonicalGraph()
            # two weakly disconnected pipelines
            g.add_source("s1", 8)
            g.add_task("a", 8, 4)
            g.add_sink("k1", 4)
            g.add_edge("s1", "a")
            g.add_edge("a", "k1")
            g.add_source("s2", 2)
            g.add_task("b", 2, 6)
            g.add_sink("k2", 6)
            g.add_edge("s2", "b")
            g.add_edge("b", "k2")
            return g

        g = build()
        ig = freeze(g)
        assert {ig.names[i] for i in ig.entries} == {"s1", "s2"}
        assert {ig.names[i] for i in ig.exits} == {"k1", "k2"}
        assert_golden(g, build(), 2, "lts")

    def test_levels_exact_fractions(self):
        g = CanonicalGraph()
        g.add_task("a", 2, 3)   # upsampler, rate 3/2
        g.add_task("b", 3, 5)   # upsampler, rate 5/3
        g.add_edge("a", "b")
        levels = node_levels(g)
        assert levels["a"] == Fraction(1)
        assert levels["b"] == Fraction(5, 3) + Fraction(1)
        assert num_levels(g) == Fraction(8, 3)

    def test_graph_from_dict_validate_false_roundtrip(self):
        g = random_canonical_graph("fft", 8, seed=0)
        doc = graph_to_dict(g)
        h = graph_from_dict(doc, validate=False)
        assert graph_to_dict(h) == doc


class TestCsdfMultiRatePhases:
    """Flattened self-timed executor on cyclo-static (multi-rate) actors."""

    def _graph(self):
        from repro.sdf.csdf import CsdfGraph

        csdf = CsdfGraph()
        csdf.add_actor("A", durations=(1, 1))   # two phases
        csdf.add_actor("B", durations=(2,))
        # phase 0 produces 1 token, phase 1 produces 2; B needs 3
        csdf.add_channel("A", "B", production=(1, 2), consumption=(3,))
        return csdf

    def test_hand_computed_makespan(self):
        from repro.sdf import self_timed_makespan

        res = self_timed_makespan(self._graph())
        # A: [0,1) and [1,2); B fires at t=2 with 3 tokens, done at 4
        assert res.makespan == 4
        assert res.firings == 3

    def test_two_iterations_pipeline(self):
        from repro.sdf import self_timed_makespan

        res = self_timed_makespan(self._graph(), iterations=2)
        # second A cycle overlaps B's first firing: [2,3), [3,4); the
        # second B firing runs [4,6)
        assert res.makespan == 6
        assert res.firings == 6

    def test_repetition_vector_respected(self):
        csdf = self._graph()
        q = csdf.repetition_vector()
        assert q == {"A": 1, "B": 1}

    def test_deadlock_detection_survives_flattening(self):
        from repro.sdf.csdf import CsdfGraph
        from repro.sdf import self_timed_makespan

        csdf = CsdfGraph()
        csdf.add_actor("A", durations=(1,))
        csdf.add_actor("B", durations=(1,))
        csdf.add_channel("A", "B", production=(1,), consumption=(1,))
        csdf.add_channel("B", "A", production=(1,), consumption=(1,))
        with pytest.raises(RuntimeError, match="deadlocked"):
            self_timed_makespan(csdf)


class TestPortfolioPoolEquivalence:
    def test_pooled_race_matches_sequential(self):
        from repro.service import PortfolioPool, run_portfolio

        g = random_canonical_graph("fft", 16, seed=1)
        schedulers = ("rlx", "lts", "work", "nstr", "heft")
        seq = run_portfolio(g, 8, schedulers=schedulers)
        with PortfolioPool(2) as pool:
            par = run_portfolio(g, 8, schedulers=schedulers, pool=pool)
        assert par.winner.name == seq.winner.name
        assert par.winner.makespan == seq.winner.makespan
        assert not par.truncated
        assert [c.name for c in par.candidates] == list(schedulers)
        assert json.dumps(par.schedule_doc(), sort_keys=True) == \
            json.dumps(seq.schedule_doc(), sort_keys=True)

    def test_pool_closed_mid_race_falls_back_in_process(self):
        import threading
        import time

        from repro.service import PortfolioPool, run_portfolio

        g = random_canonical_graph("layered", 200, seed=0)
        schedulers = ("rlx", "lts", "nstr")
        pool = PortfolioPool(2)
        out = {}

        def race():
            out["r"] = run_portfolio(g, 32, schedulers=schedulers, pool=pool)

        t = threading.Thread(target=race)
        t.start()
        time.sleep(0.02)
        pool.close()  # owner shuts down while the race is in flight
        t.join(timeout=60)
        assert not t.is_alive(), "pooled race hung after pool close"
        seq = run_portfolio(g, 32, schedulers=schedulers)
        assert out["r"].winner.name == seq.winner.name
        assert out["r"].winner.makespan == seq.winner.makespan

    def test_service_with_portfolio_workers(self):
        from repro.service import ScheduleService

        service = ScheduleService(portfolio_workers=2)
        try:
            doc = graph_to_dict(random_canonical_graph("chain", 6, seed=0))
            response = service.handle(
                {"op": "schedule", "graph": doc, "num_pes": 2}
            )
            assert response["ok"]
            assert response["makespan"] > 0
            assert service._stats()["portfolio_workers"] == 2
        finally:
            service.close()
