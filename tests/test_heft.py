"""Unit tests for the heterogeneous HEFT baseline."""

import math

import pytest

from repro import CanonicalGraph, total_work
from repro.baselines import schedule_heft, schedule_nonstreaming, upward_ranks
from repro.graphs import random_canonical_graph

from conftest import build_diamond, build_elementwise_chain


class TestHomogeneousSpecialCase:
    def test_matches_nstr_on_chain(self):
        g = build_elementwise_chain(5, 16)
        heft = schedule_heft(g, [1.0] * 4)
        nstr = schedule_nonstreaming(g, 4)
        assert heft.makespan == nstr.makespan == 80

    def test_close_to_nstr_generally(self):
        """Unit speeds + infinite bandwidth: same model, possibly
        different tie-breaking — makespans must be within 10%."""
        for seed in range(5):
            g = random_canonical_graph("gaussian", 8, seed=seed)
            heft = schedule_heft(g, [1.0] * 8)
            nstr = schedule_nonstreaming(g, 8)
            assert abs(heft.makespan - nstr.makespan) <= 0.1 * nstr.makespan


class TestHeterogeneity:
    def test_fast_pe_attracts_critical_path(self):
        g = build_elementwise_chain(4, 32)
        slowish = schedule_heft(g, [1.0, 1.0])
        with_fast = schedule_heft(g, [1.0, 4.0])
        assert with_fast.makespan < slowish.makespan
        # the chain should run entirely on the 4x PE: ceil(32/4)*4
        assert with_fast.makespan == 4 * 8

    def test_speed_scaling_exact(self):
        g = CanonicalGraph()
        g.add_task("a", 30, 30)
        s = schedule_heft(g, [3.0])
        assert s.makespan == 10

    def test_faster_pool_never_worse(self):
        g = random_canonical_graph("fft", 8, seed=0)
        base = schedule_heft(g, [1.0] * 4)
        boosted = schedule_heft(g, [2.0] * 4)
        assert boosted.makespan <= base.makespan

    def test_validate_heterogeneous(self):
        for seed in range(3):
            g = random_canonical_graph("cholesky", 5, seed=seed)
            s = schedule_heft(g, [1.0, 2.0, 0.5, 1.5])
            s.validate()

    def test_invalid_speeds(self):
        g = build_elementwise_chain(2, 4)
        with pytest.raises(ValueError):
            schedule_heft(g, [])
        with pytest.raises(ValueError):
            schedule_heft(g, [1.0, -2.0])


class TestCommunication:
    def test_finite_bandwidth_penalizes_spreading(self):
        """With costly communication, a fork-join prefers fewer PEs."""
        g = build_diamond(64)
        free = schedule_heft(g, [1.0] * 2, bandwidth=math.inf)
        costly = schedule_heft(g, [1.0] * 2, bandwidth=0.25)
        assert costly.makespan >= free.makespan

    def test_same_pe_communication_free(self):
        g = build_elementwise_chain(3, 16)
        s = schedule_heft(g, [1.0], bandwidth=1.0)
        # single PE: no cross-PE edges, no comm penalty
        assert s.makespan == total_work(g)

    def test_upward_ranks_monotone(self):
        g = build_elementwise_chain(4, 8)
        ranks = upward_ranks(g, [1.0, 1.0], bandwidth=math.inf)
        values = [ranks[i] for i in range(4)]
        assert values == sorted(values, reverse=True)
