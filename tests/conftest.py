"""Shared fixtures: the paper's worked-example graphs and tiny helpers."""

from __future__ import annotations

import pytest

from repro import CanonicalGraph


def build_fig9_graph1() -> CanonicalGraph:
    """Figure 9, task graph (1).

    A chain ``0 -(32)-> 1 -(4)-> 2 -(2)-> 3 -(32)-> 4`` with a shortcut
    edge ``0 -(32)-> 4``; deadlocks without 18 slots on (0, 4).
    """
    g = CanonicalGraph()
    g.add_task(0, 32, 32)
    g.add_task(1, 32, 4)
    g.add_task(2, 4, 2)
    g.add_task(3, 2, 32)
    g.add_task(4, 32, 32)
    for e in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
        g.add_edge(*e)
    g.validate()
    return g


def build_fig9_graph2() -> CanonicalGraph:
    """Figure 9, task graph (2).

    Undirected cycle 0-1-2-5-4-0 plus the chain 3 -> 4; the slow path
    through the 32:1 downsampler and 1:32 upsampler forces 32 slots on
    the (4, 5) channel.
    """
    g = CanonicalGraph()
    g.add_task(0, 32, 32)
    g.add_task(1, 32, 1)
    g.add_task(2, 1, 32)
    g.add_task(3, 32, 32)
    g.add_task(4, 32, 32)
    g.add_task(5, 32, 32)
    for e in [(0, 1), (1, 2), (2, 5), (3, 4), (4, 5), (0, 4)]:
        g.add_edge(*e)
    g.validate()
    return g


def build_elementwise_chain(n: int, k: int) -> CanonicalGraph:
    """``n`` element-wise tasks in a row, each moving ``k`` elements."""
    g = CanonicalGraph()
    for i in range(n):
        g.add_task(i, k, k)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def build_diamond(k: int = 16) -> CanonicalGraph:
    """A 4-node diamond of element-wise tasks (undirected cycle)."""
    g = CanonicalGraph()
    for i in range(4):
        g.add_task(i, k, k)
    for e in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        g.add_edge(*e)
    return g


@pytest.fixture
def fig9_graph1() -> CanonicalGraph:
    return build_fig9_graph1()


@pytest.fixture
def fig9_graph2() -> CanonicalGraph:
    return build_fig9_graph2()


@pytest.fixture
def ew_chain() -> CanonicalGraph:
    return build_elementwise_chain(8, 32)


@pytest.fixture
def diamond() -> CanonicalGraph:
    return build_diamond()
