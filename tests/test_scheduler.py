"""Integration tests for the end-to-end streaming scheduler."""

import pytest

from repro import (
    CanonicalGraph,
    schedule_streaming,
    speedup,
    streaming_depth,
    total_work,
)
from repro.graphs import random_canonical_graph

from conftest import build_elementwise_chain


class TestChainBehavior:
    def test_single_pe_serializes(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 1, "rlx")
        assert s.num_blocks == 4
        # blocks run back to back: 16 cycles each
        assert s.makespan == 4 * 16

    def test_full_pipelining_matches_streaming_depth(self):
        g = build_elementwise_chain(8, 32)
        s = schedule_streaming(g, 8, "rlx")
        assert s.makespan == streaming_depth(g) == 32 + 8 - 1

    def test_speedup_grows_with_pes(self):
        g = build_elementwise_chain(8, 32)
        spds = [
            speedup(g, schedule_streaming(g, p, "rlx").makespan) for p in (1, 2, 4, 8)
        ]
        assert spds == sorted(spds)
        assert spds[0] == pytest.approx(1.0)


class TestScheduleObject:
    def test_streaming_edges_within_blocks_only(self, ew_chain):
        s = schedule_streaming(ew_chain, 4, "rlx")
        for u, v in ew_chain.edges:
            expected = s.block_of(u) == s.block_of(v)
            assert s.is_streaming_edge(u, v) == expected

    def test_pe_assignment_unique_within_block(self, ew_chain):
        s = schedule_streaming(ew_chain, 4, "rlx")
        for block in s.partition.blocks:
            pes = [s.pe_of[v] for v in block]
            assert len(set(pes)) == len(pes)
            assert all(0 <= pe < 4 for pe in pes)

    def test_validate_passes(self, fig9_graph1, fig9_graph2):
        for g in (fig9_graph1, fig9_graph2):
            for variant in ("lts", "rlx"):
                for p in (1, 2, 8):
                    schedule_streaming(g, p, variant).validate()

    def test_makespan_is_max_completion(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        assert s.makespan == max(
            s.times[v].lo for v in fig9_graph1.computational_nodes()
        )

    def test_busy_time_bounded_by_work_and_makespan(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        assert s.busy_time() >= total_work(fig9_graph1)
        assert s.busy_time() <= 5 * s.makespan


class TestCrossBlockSemantics:
    def test_consumer_starts_after_producer_completes(self):
        """Buffered edges: strict serialization across blocks."""
        for topo, size, pes in [("gaussian", 8, 4), ("cholesky", 5, 4)]:
            for seed in range(5):
                g = random_canonical_graph(topo, size, seed=seed)
                s = schedule_streaming(g, pes, "rlx")
                for u, v in g.edges:
                    if not s.is_streaming_edge(u, v):
                        ku, kv = g.kind(u), g.kind(v)
                        if ku.is_computational and kv.is_computational:
                            assert s.times[v].st >= s.times[u].lo

    def test_sequential_blocks_never_overlap(self):
        g = random_canonical_graph("fft", 16, seed=0)
        s = schedule_streaming(g, 8, "rlx")
        ends = {}
        starts = {}
        for b, block in enumerate(s.partition.blocks):
            starts[b] = min(s.times[v].st for v in block)
            ends[b] = max(s.times[v].lo for v in block)
        for b in range(1, s.num_blocks):
            assert starts[b] >= ends[b - 1]

    def test_dependency_only_mode_can_overlap(self):
        """Two independent chains on 1-task blocks overlap when
        sequential_blocks=False (the bare paper recurrences)."""
        g = CanonicalGraph()
        g.add_task("a0", 8, 8)
        g.add_task("a1", 8, 8)
        g.add_edge("a0", "a1")
        g.add_task("b0", 8, 8)
        g.add_task("b1", 8, 8)
        g.add_edge("b0", "b1")
        s_seq = schedule_streaming(g, 1, "rlx", sequential_blocks=True)
        s_dep = schedule_streaming(g, 1, "rlx", sequential_blocks=False)
        assert s_dep.makespan <= s_seq.makespan
        assert s_seq.makespan == 4 * 8


class TestVariants:
    @pytest.mark.parametrize("variant", ["lts", "rlx", "work"])
    def test_all_variants_schedule_everything(self, variant):
        g = random_canonical_graph("gaussian", 8, seed=2)
        s = schedule_streaming(g, 8, variant)
        assert set(s.times) == set(g.nodes)
        s.partition.validate(g, 8)

    def test_rlx_wins_when_pes_cover_tasks(self):
        """Figure 10's observation: SB-RLX >= SB-LTS at P >= #tasks."""
        wins = 0
        total = 0
        for seed in range(10):
            g = random_canonical_graph("chain", 8, seed=seed)
            lts = schedule_streaming(g, 8, "lts", size_buffers=False)
            rlx = schedule_streaming(g, 8, "rlx", size_buffers=False)
            total += 1
            if rlx.makespan <= lts.makespan:
                wins += 1
        assert wins >= total * 0.7
