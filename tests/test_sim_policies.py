"""Deeper DES coverage: policies, pacing, channel statistics."""

import pytest

from repro import CanonicalGraph, schedule_streaming
from repro.graphs import random_canonical_graph
from repro.sim import simulate_schedule

from conftest import build_elementwise_chain


class TestPeChainPolicy:
    def test_pe_policy_respects_pe_exclusivity(self):
        """Under the per-PE policy, tasks sharing a PE never overlap."""
        g = random_canonical_graph("gaussian", 8, seed=4)
        s = schedule_streaming(g, 4, "rlx")
        sim = simulate_schedule(s, policy="pe")
        assert not sim.deadlocked
        # reconstruct per-PE finish order: a task mapped after another on
        # the same PE must finish later
        by_pe: dict[int, list] = {}
        for v in g.computational_nodes():
            by_pe.setdefault(s.pe_of[v], []).append(v)
        for pe, tasks in by_pe.items():
            tasks.sort(key=lambda v: s.block_of(v))
            finishes = [sim.finish_times[v] for v in tasks]
            assert finishes == sorted(finishes)

    def test_dataflow_policy_is_fastest(self):
        g = random_canonical_graph("cholesky", 6, seed=2)
        s = schedule_streaming(g, 8, "rlx")
        spans = {
            policy: simulate_schedule(s, policy=policy).makespan
            for policy in ("barrier", "pe", "dataflow")
        }
        assert spans["dataflow"] <= spans["pe"] <= spans["barrier"]


class TestChannelAccounting:
    def test_totals_match_volumes(self):
        g = build_elementwise_chain(4, 16)
        s = schedule_streaming(g, 4, "rlx")
        sim = simulate_schedule(s)
        for (u, v), (cap, occ) in sim.channel_stats.items():
            assert occ <= cap
        assert not sim.deadlocked

    def test_finish_times_cover_all_tasks(self):
        g = random_canonical_graph("fft", 8, seed=1)
        s = schedule_streaming(g, 8, "rlx")
        sim = simulate_schedule(s)
        assert set(sim.finish_times) == set(g.computational_nodes())
        assert sim.makespan == max(sim.finish_times.values())

    def test_deadlocked_run_reports_partial_finishes(self, fig9_graph1):
        s = schedule_streaming(fig9_graph1, 8)
        sim = simulate_schedule(s, capacity_override=1)
        assert sim.deadlocked
        assert len(sim.finish_times) < 5  # not everything completed


class TestPacingDetails:
    def test_steady_pacing_reproduces_upsampler_tail(self):
        """An exit upsampler's burst is paced at S_o in steady mode but
        free-runs in greedy mode — the exact case of DESIGN.md item on
        Eq. (3) being a steady-state model."""
        g = CanonicalGraph()
        g.add_task(0, 64, 64)
        g.add_task(1, 64, 8)   # downsampler
        g.add_task(2, 8, 16)   # exit upsampler with S_o = 64/16 = 4
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        s = schedule_streaming(g, 4, "rlx")
        steady = simulate_schedule(s, pacing="steady")
        greedy = simulate_schedule(s, pacing="greedy")
        assert steady.makespan == s.makespan
        assert greedy.makespan < steady.makespan

    def test_both_pacings_deadlock_free_with_sized_fifos(self):
        for seed in range(5):
            g = random_canonical_graph("gaussian", 8, seed=seed)
            s = schedule_streaming(g, 16, "rlx")
            for pacing in ("steady", "greedy"):
                assert not simulate_schedule(s, pacing=pacing).deadlocked


class TestMultiBlockStreams:
    def test_three_block_chain_exactness(self):
        g = build_elementwise_chain(9, 16)
        s = schedule_streaming(g, 3, "rlx")
        assert s.num_blocks == 3
        sim = simulate_schedule(s)
        assert sim.makespan == s.makespan
        # each block pipelines internally (16 + 3 - 1 = 18 cycles) and
        # blocks run back to back
        assert s.makespan == 3 * 18

    def test_single_task_blocks_degenerate_to_sequential(self):
        g = build_elementwise_chain(4, 8)
        s = schedule_streaming(g, 1, "rlx")
        sim = simulate_schedule(s)
        assert sim.makespan == s.makespan == 4 * 8
