"""Unit tests for the per-block FO/LO/ST recurrences (Section 5.1)."""

import pytest

from repro import CanonicalGraph
from repro.core.block_schedule import schedule_block

from conftest import build_elementwise_chain


def times_of(graph, release=0, ready=None):
    return schedule_block(graph, set(graph.nodes), ready or {}, release=release).times


class TestElementwise:
    def test_chain_pipeline(self):
        g = build_elementwise_chain(3, 16)
        t = times_of(g)
        assert t[0].fo == 1 and t[0].lo == 16
        assert t[1].fo == 2 and t[1].lo == 17
        assert t[2].fo == 3 and t[2].lo == 18

    def test_start_times_follow_first_outs(self):
        g = build_elementwise_chain(3, 16)
        t = times_of(g)
        assert t[0].st == 0
        assert t[1].st == t[0].fo
        assert t[2].st == t[1].fo

    def test_busy_time(self):
        g = build_elementwise_chain(2, 8)
        t = times_of(g)
        assert t[0].busy == 8
        assert t[1].busy == 8


class TestRates:
    def test_downsampler_first_out_accumulates(self):
        g = CanonicalGraph()
        g.add_task("a", 32, 32)
        g.add_task("d", 32, 4)  # rate 1/8
        g.add_edge("a", "d")
        t = times_of(g)
        assert t["d"].fo == t["a"].fo + 8  # ceil((8-1)*1) + 1
        assert t["d"].lo == t["a"].lo + 1

    def test_upsampler_last_out_extends(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("u", 4, 32)  # rate 8, S_o = 1
        g.add_edge("a", "u")
        t = times_of(g)
        assert t["u"].fo == t["a"].fo + 1
        assert t["u"].lo == t["a"].lo + 8  # ceil(7*1) + 1


class TestRelease:
    def test_release_shifts_everything(self):
        g = build_elementwise_chain(3, 16)
        base = times_of(g)
        shifted = times_of(g, release=100)
        for v in g.nodes:
            assert shifted[v].fo == base[v].fo + 100
            assert shifted[v].lo == base[v].lo + 100

    def test_external_dependency_gates_start(self):
        g = CanonicalGraph()
        g.add_task("x", 8, 8)
        g.add_task("y", 8, 8)
        g.add_edge("x", "y")
        # schedule only y; x completed at t=50 in an earlier block
        block = schedule_block(g, {"y"}, ready={"x": 50})
        t = block.times["y"]
        assert t.st == 50
        assert t.fo == 51
        assert t.lo == 50 + 8

    def test_missing_external_time_raises(self):
        g = CanonicalGraph()
        g.add_task("x", 8, 8)
        g.add_task("y", 8, 8)
        g.add_edge("x", "y")
        with pytest.raises(KeyError):
            schedule_block(g, {"y"}, ready={})


class TestPassiveNodes:
    def test_source_streams_from_time_zero(self):
        g = CanonicalGraph()
        g.add_source("s", 16)
        g.add_task("e", 16, 16)
        g.add_edge("s", "e")
        t = times_of(g)
        assert t["e"].fo == 1
        assert t["e"].lo == 16

    def test_buffer_serializes(self):
        g = CanonicalGraph()
        g.add_task("a", 16, 16)
        g.add_buffer("B", 16, 16)
        g.add_task("b", 16, 16)
        g.add_edge("a", "B")
        g.add_edge("B", "b")
        t = times_of(g)
        assert t["B"].st == t["a"].lo  # stored when producer finishes
        assert t["b"].fo == t["a"].lo + 1
        assert t["b"].lo == t["a"].lo + 16

    def test_entry_buffer_preloaded(self):
        """Weights in memory are readable from t=0."""
        g = CanonicalGraph()
        g.add_buffer("W", 16, 16)
        g.add_task("e", 16, 16)
        g.add_edge("W", "e")
        t = times_of(g)
        assert t["W"].st == 0
        assert t["e"].fo == 1

    def test_sink_times(self):
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_sink("t", 8)
        g.add_edge("a", "t")
        times = times_of(g)
        assert times["t"].lo == times["a"].lo + 1


class TestMakespanContribution:
    def test_only_schedulable_work_counts(self):
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_sink("t", 8)
        g.add_edge("a", "t")
        block = schedule_block(g, set(g.nodes), {})
        assert block.makespan_contribution(g) == block.times["a"].lo

    def test_exit_buffer_counts_via_stored_time(self):
        g = CanonicalGraph()
        g.add_task("a", 8, 8)
        g.add_buffer("B", 8, 8)
        g.add_edge("a", "B")
        block = schedule_block(g, set(g.nodes), {})
        assert block.makespan_contribution(g) == block.times["a"].lo
