"""Smoke + shape tests for the experiment harnesses (tiny populations)."""

import pytest

from repro.experiments import common
from repro.experiments.ablations import (
    run_buffer_ablation,
    run_pacing_ablation,
    run_partition_ablation,
)
from repro.experiments.fig10_speedup import run as run_fig10
from repro.experiments.fig11_sslr import run as run_fig11
from repro.experiments.fig12_csdf import run as run_fig12
from repro.experiments.fig13_validation import run as run_fig13
from repro.experiments.table2_ml import ENCODER_PES, RESNET_PES, run as run_table2

TINY = {"chain": 8, "fft": 8, "gaussian": 8, "cholesky": 5}
SWEEP = {"chain": (2, 8), "fft": (8, 32), "gaussian": (8, 32), "cholesky": (8, 32)}


class TestCommon:
    def test_box_stats(self):
        s = common.BoxStats.from_samples([1, 2, 3, 4, 100])
        assert s.median == 3
        assert s.outliers == 1
        assert s.whisker_hi == 4

    def test_box_stats_empty(self):
        with pytest.raises(ValueError):
            common.BoxStats.from_samples([])

    def test_format_table_alignment(self):
        out = common.format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_default_num_graphs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_GRAPHS", "7")
        assert common.default_num_graphs() == 7
        monkeypatch.setenv("REPRO_NUM_GRAPHS", "junk")
        assert common.default_num_graphs(9) == 9


class TestFig10:
    def test_shapes(self):
        cells = run_fig10(num_graphs=5, topologies=TINY, pe_sweeps=SWEEP)
        assert len(cells) == 4 * 2 * 3
        by_key = {(c.topology, c.num_pes, c.scheduler): c for c in cells}
        # chain: buffered scheduling cannot exceed speedup 1
        for p in SWEEP["chain"]:
            assert by_key[("chain", p, "NSTR-SCH")].speedups.median == pytest.approx(1.0)
            assert by_key[("chain", p, "STR-SCH-2")].speedups.median > 1.0
        # streaming outruns non-streaming at the top of each sweep
        for topo in ("gaussian", "cholesky"):
            p = SWEEP[topo][-1]
            assert (
                by_key[(topo, p, "STR-SCH-2")].speedups.median
                > by_key[(topo, p, "NSTR-SCH")].speedups.median
            )

    def test_utilization_bounds(self):
        cells = run_fig10(num_graphs=3, topologies={"chain": 8}, pe_sweeps={"chain": (4,)})
        for c in cells:
            assert 0 < c.mean_utilization <= 1.0 + 1e-9


class TestFig11:
    def test_sslr_reaches_one_at_full_width(self):
        cells = run_fig11(num_graphs=5, topologies={"chain": 8}, pe_sweeps={"chain": (2, 8)})
        by_key = {(c.num_pes, c.scheduler): c for c in cells}
        assert by_key[(8, "STR-SCH-2")].sslr.median == pytest.approx(1.0)
        assert by_key[(2, "STR-SCH-2")].sslr.median > 1.0

    def test_sslr_never_below_partial(self):
        cells = run_fig11(num_graphs=4, topologies=TINY, pe_sweeps=SWEEP)
        for c in cells:
            assert c.sslr.median >= 0.9


class TestFig12:
    def test_ratio_near_one_and_cost_gap(self):
        comps = run_fig12(num_graphs=4, topologies={"fft": 8, "gaussian": 8})
        for c in comps:
            assert c.timeouts == 0
            assert 0.9 <= c.makespan_ratio.median <= 1.3

    def test_timeout_counted(self):
        comps = run_fig12(num_graphs=2, topologies={"fft": 8}, max_firings=10)
        assert comps[0].timeouts == 2


class TestFig13:
    def test_median_error_small_no_deadlock(self):
        cells = run_fig13(num_graphs=4, topologies=TINY, pe_sweeps=SWEEP)
        for c in cells:
            assert c.deadlocks == 0
            assert abs(c.error_pct.median) <= 5.0


class TestTable2:
    def test_rows_and_gains(self):
        rows = run_table2(full=False)
        assert len(rows) == len(RESNET_PES) + len(ENCODER_PES)
        for r in rows:
            assert r.str_speedup > 1
            assert r.nstr_speedup > 1
        enc = [r for r in rows if r.model == "encoder"]
        assert all(r.gain > 1.0 for r in enc)
        gains = [r.gain for r in enc]
        assert gains == sorted(gains)


class TestAblations:
    def test_buffer_ablation_counts(self):
        rows = run_buffer_ablation(num_graphs=3, num_pes=16)
        for r in rows:
            assert r.deadlocks_sized == 0
            assert 0 <= r.deadlocks_cap1 <= r.n

    def test_partition_ablation_fill(self):
        rows = run_partition_ablation(num_graphs=3, num_pes=16)
        by_variant = {}
        for r in rows:
            by_variant.setdefault(r.variant, []).append(r.mean_fill)
        # SB-RLX fills blocks at least as densely as SB-LTS
        for rlx, lts in zip(by_variant["rlx"], by_variant["lts"]):
            assert rlx >= lts - 1e-9

    def test_pacing_ablation_nonnegative(self):
        rows = run_pacing_ablation(num_graphs=3, num_pes=16)
        for r in rows:
            assert r.mean_speedup_pct >= -1e-9
