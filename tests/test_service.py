"""Tests for the scheduling service: fingerprint, cache, portfolio,
server/client wire protocol, load generator and CLI wiring."""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.core import find_isomorphism, graph_fingerprint, graph_to_dict, save_graph
from repro.core.graph import CanonicalGraph
from repro.core.node_types import NodeSpec
from repro.graphs import random_canonical_graph
from repro.service import (
    DEFAULT_SCHEDULERS,
    SCHEDULE_KEY_VERSION,
    ScheduleCache,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
    ServiceError,
    build_request_pool,
    percentile,
    request_key,
    run_loadgen,
    run_portfolio,
    scheduler_names,
)


def relabel(graph: CanonicalGraph, prefix: str = "r") -> CanonicalGraph:
    """Same graph, different node names and insertion order."""
    mapping = {v: f"{prefix}{i}" for i, v in enumerate(graph.nodes)}
    clone = CanonicalGraph()
    for v in reversed(list(graph.nodes)):
        s = graph.spec(v)
        clone.add_node(
            NodeSpec(mapping[v], s.kind, s.input_volume, s.output_volume)
        )
    for u, v in graph.edges:
        clone.nx.add_edge(mapping[u], mapping[v])
    return clone


class TestFingerprint:
    def test_stable_under_relabeling(self):
        g = random_canonical_graph("fft", 8, seed=3)
        assert graph_fingerprint(g) == graph_fingerprint(relabel(g))

    def test_method_matches_function(self):
        g = random_canonical_graph("chain", 8, seed=0)
        assert g.fingerprint() == graph_fingerprint(g)

    def test_volume_change_changes_fingerprint(self):
        a = random_canonical_graph("gaussian", 4, seed=1)
        b = random_canonical_graph("gaussian", 4, seed=2)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_topology_change_changes_fingerprint(self):
        a = random_canonical_graph("chain", 6, seed=0)
        b = random_canonical_graph("chain", 7, seed=0)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_distinct_across_families_and_seeds(self):
        fps = {
            graph_fingerprint(random_canonical_graph(topo, size, seed=s))
            for topo, size in (("chain", 8), ("fft", 8), ("gaussian", 6))
            for s in range(5)
        }
        assert len(fps) == 15

    def test_direction_matters(self):
        # fan-out vs fan-in over identically-labelled nodes: only the
        # edge directions differ, so an undirected hash would collide
        def three_nodes():
            g = CanonicalGraph()
            for name in ("p", "q", "r"):
                g.add_task(name, 8, 8)
            return g

        fan_out = three_nodes()
        fan_out.add_edge("p", "q")
        fan_out.add_edge("p", "r")
        fan_in = three_nodes()
        fan_in.add_edge("p", "r")
        fan_in.add_edge("q", "r")
        assert graph_fingerprint(fan_out) != graph_fingerprint(fan_in)

    def test_request_key_composition(self):
        key = request_key("f" * 64, 8, "makespan", ("rlx", "nstr"))
        assert key == f"{SCHEDULE_KEY_VERSION}:{'f' * 64}:p8:makespan:rlx+nstr"
        assert key != request_key("f" * 64, 8, "makespan", ("nstr", "rlx"))

    def test_request_key_carries_schema_version(self):
        # entries persisted by older code must become unreachable after
        # a schedule-schema or scheduler change: the version leads the key
        assert request_key("a", 2, "makespan", ("rlx",)).startswith(
            f"{SCHEDULE_KEY_VERSION}:"
        )


class TestFindIsomorphism:
    def test_witness_maps_relabeled_graph(self):
        g = random_canonical_graph("fft", 8, seed=3)
        h = relabel(g)
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert set(mapping) == set(g.nodes)
        assert set(mapping.values()) == set(h.nodes)
        assert {(mapping[u], mapping[v]) for u, v in g.edges} == set(h.edges)

    def test_witness_respects_symmetric_orbits(self):
        # two identical parallel chains: 1-WL alone cannot tell the
        # twins apart, so the witness must pair chains consistently
        def chains(prefix_a, prefix_b):
            g = CanonicalGraph()
            for p in (prefix_a, prefix_b):
                for i in range(3):
                    g.add_task(f"{p}{i}", 8, 8)
                for i in range(2):
                    g.add_edge(f"{p}{i}", f"{p}{i + 1}")
            return g

        src, dst = chains("a", "b"), chains("x", "y")
        mapping = find_isomorphism(src, dst)
        assert mapping is not None
        assert {(mapping[u], mapping[v]) for u, v in src.edges} == set(dst.edges)

    def test_non_isomorphic_same_sizes_yield_none(self):
        def three_nodes():
            g = CanonicalGraph()
            for name in ("p", "q", "r"):
                g.add_task(name, 8, 8)
            return g

        fan_out = three_nodes()
        fan_out.add_edge("p", "q")
        fan_out.add_edge("p", "r")
        fan_in = three_nodes()
        fan_in.add_edge("p", "r")
        fan_in.add_edge("q", "r")
        assert find_isomorphism(fan_out, fan_in) is None

    def test_size_mismatch_yields_none(self):
        a = random_canonical_graph("chain", 6, seed=0)
        b = random_canonical_graph("chain", 7, seed=0)
        assert find_isomorphism(a, b) is None


class TestScheduleCache:
    def test_lru_hit_and_miss_counters(self):
        cache = ScheduleCache(None, capacity=4)
        assert cache.get("a") is None
        cache.put("a", {"x": 1})
        entry, tier = cache.get("a")
        assert entry == {"x": 1} and tier == "lru"
        counters = cache.counters()
        assert counters["hits"] == 1 and counters["misses"] == 1

    def test_eviction_drops_least_recent(self):
        cache = ScheduleCache(None, capacity=2)
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})
        cache.get("a")  # a is now most recent
        cache.put("c", {"v": "c"})  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.counters()["evictions"] == 1

    def test_persistent_tier_survives_reopen(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        cache = ScheduleCache(path, capacity=4)
        cache.put("k", {"answer": 42})
        reopened = ScheduleCache(path, capacity=4)
        entry, tier = reopened.get("k")
        assert entry == {"answer": 42} and tier == "store"
        # promoted into the LRU: second get is a memory hit
        assert reopened.get("k")[1] == "lru"

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        ScheduleCache(path).put("good", {"v": 1})
        with open(path, "a") as fh:
            fh.write('{"key": "torn", "entry": {tr')  # torn write
        reopened = ScheduleCache(path)
        assert reopened.get("good") is not None
        assert reopened.get("torn") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ScheduleCache(None, capacity=0)

    def test_store_entries_stay_on_disk_until_hit(self, tmp_path):
        # the disk tier is an offset index, not resident entries: a key
        # evicted from the LRU is re-read from the file on demand
        path = tmp_path / "schedules.jsonl"
        cache = ScheduleCache(path, capacity=1)
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})  # evicts a from the LRU
        assert cache.counters()["evictions"] == 1
        entry, tier = cache.get("a")
        assert entry == {"v": "a"} and tier == "store"
        assert cache.get("a")[1] == "lru"  # promoted back


class TestPortfolio:
    def test_default_race_and_winner(self):
        g = random_canonical_graph("fft", 8, seed=0)
        result = run_portfolio(g, 8)
        assert [c.name for c in result.candidates] == list(DEFAULT_SCHEDULERS)
        assert result.winner.makespan == min(c.makespan for c in result.candidates)
        assert result.schedule_doc()["makespan"] == result.winner.makespan
        assert not result.truncated

    def test_registry_contains_all_five(self):
        assert set(scheduler_names()) >= {"lts", "rlx", "work", "nstr", "heft"}

    def test_heft_and_work_candidates_run(self):
        g = random_canonical_graph("gaussian", 6, seed=1)
        result = run_portfolio(g, 4, schedulers=("heft", "work"))
        assert {c.name for c in result.candidates} == {"heft", "work"}

    def test_buffer_objective_prefers_fifo_free_schedules(self):
        g = random_canonical_graph("fft", 8, seed=0)
        result = run_portfolio(g, 8, objective="buffer",
                               schedulers=("rlx", "nstr"))
        # nstr needs no FIFOs at all, so it wins the buffer objective
        assert result.winner.name == "nstr"
        assert result.winner.fifo_total == 0

    def test_throughput_value_is_speedup(self):
        from repro.core import total_work

        g = random_canonical_graph("chain", 8, seed=0)
        result = run_portfolio(g, 4, objective="throughput")
        assert result.winner.value == pytest.approx(
            total_work(g) / result.winner.makespan
        )

    def test_budget_truncates_but_returns_a_schedule(self):
        g = random_canonical_graph("fft", 8, seed=0)
        result = run_portfolio(g, 8, budget_s=0.0)
        assert result.truncated
        assert len(result.candidates) == 1
        assert result.winner.name == DEFAULT_SCHEDULERS[0]

    def test_unknown_scheduler_rejected(self):
        g = random_canonical_graph("chain", 4, seed=0)
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_portfolio(g, 2, schedulers=("nope",))

    def test_unknown_objective_rejected(self):
        g = random_canonical_graph("chain", 4, seed=0)
        with pytest.raises(ValueError, match="unknown objective"):
            run_portfolio(g, 2, objective="vibes")

    def test_scheduler_names_with_key_delimiters_rejected(self):
        from repro.service import register_scheduler

        # names land in cache keys joined by '+' and delimited by ':',
        # so ["rlx+lts"] must never collide with ["rlx", "lts"]
        for bad in ("rlx+lts", "a:b", "", " padded "):
            with pytest.raises(ValueError, match="invalid scheduler name"):
                register_scheduler(bad, lambda g, p: None)


class TestScheduleService:
    def setup_method(self):
        self.service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        self.graph = random_canonical_graph("fft", 8, seed=1)
        self.doc = {
            "op": "schedule",
            "graph": graph_to_dict(self.graph),
            "num_pes": 8,
        }

    def test_cold_then_cached_byte_identical(self):
        cold = self.service.handle(dict(self.doc))
        warm = self.service.handle(dict(self.doc))
        assert cold["ok"] and cold["cached"] is False
        assert warm["cached"] == "lru"
        assert json.dumps(cold["schedule"], sort_keys=True) == json.dumps(
            warm["schedule"], sort_keys=True
        )

    def test_relabeled_graph_hits_the_same_entry(self):
        cold = self.service.handle(dict(self.doc))
        renamed_graph = relabel(self.graph)
        renamed = {
            "op": "schedule",
            "graph": graph_to_dict(renamed_graph),
            "num_pes": 8,
        }
        response = self.service.handle(renamed)
        assert response["cached"] == "lru"
        # the hit must be *applicable*: the served schedule names the
        # requester's nodes, not the original submitter's
        assert self.service.remapped == 1
        assert response["makespan"] == cold["makespan"]
        names = {t["name"] for t in response["schedule"]["tasks"]}
        assert names and names <= set(renamed_graph.nodes)
        for fifo in response["schedule"].get("fifo_sizes", ()):
            assert fifo["src"] in renamed_graph and fifo["dst"] in renamed_graph

    def test_relabeled_store_hit_remaps_after_restart(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        first = ScheduleService(cache=ScheduleCache(path, capacity=8))
        first.handle(dict(self.doc))
        # a fresh service warming from disk must still remap the entry
        reopened = ScheduleService(cache=ScheduleCache(path, capacity=8))
        renamed_graph = relabel(self.graph)
        response = reopened.handle({
            "op": "schedule",
            "graph": graph_to_dict(renamed_graph),
            "num_pes": 8,
        })
        assert response["cached"] == "store"
        assert reopened.remapped == 1
        names = {t["name"] for t in response["schedule"]["tasks"]}
        assert names and names <= set(renamed_graph.nodes)

    def test_responses_do_not_echo_the_graph_document(self):
        cold = self.service.handle(dict(self.doc))
        warm = self.service.handle(dict(self.doc))
        assert "graph" not in cold and "graph" not in warm

    def test_no_cache_forces_recompute(self):
        self.service.handle(dict(self.doc))
        forced = self.service.handle({**self.doc, "no_cache": True})
        assert forced["cached"] is False
        assert self.service.computed == 2

    def test_distinct_pes_do_not_collide(self):
        a = self.service.handle(dict(self.doc))
        b = self.service.handle({**self.doc, "num_pes": 4})
        assert a["key"] != b["key"] and b["cached"] is False

    def test_truncated_results_are_not_cached(self):
        truncated = self.service.handle({**self.doc, "budget_ms": 0})
        assert truncated["truncated"]
        again = self.service.handle({**self.doc, "budget_ms": 0})
        assert again["cached"] is False  # never served from cache

    def test_bad_requests_answer_ok_false(self):
        assert not self.service.handle({"op": "nope"})["ok"]
        assert not self.service.handle({"op": "schedule"})["ok"]
        bad_graph = {"op": "schedule", "graph": {"format": "x"}, "num_pes": 2}
        assert not self.service.handle(bad_graph)["ok"]
        assert self.service.errors == 3

    def test_stats_shape(self):
        self.service.handle(dict(self.doc))
        stats = self.service.handle({"op": "stats"})
        assert stats["ok"] and stats["served"] == 1 and stats["computed"] == 1
        assert stats["cache"]["puts"] == 1
        # one cold request is exactly one miss: the leader's in-flight
        # double-check re-probe must not count a second one
        assert stats["cache"]["misses"] == 1

    def test_coalescing_batches_identical_fingerprints(self):
        line = dict(self.doc)
        n = 6
        barrier = threading.Barrier(n)
        responses = []
        lock = threading.Lock()

        def fire():
            barrier.wait()
            response = self.service.handle(dict(line))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["ok"] for r in responses)
        payloads = {json.dumps(r["schedule"], sort_keys=True) for r in responses}
        assert len(payloads) == 1
        # exactly one computation; everyone else waited or hit the cache
        assert self.service.computed == 1
        assert self.service.coalesced + 1 + sum(
            1 for r in responses if r["cached"] == "lru"
        ) == n

    def test_coalesced_followers_do_not_hold_work_slots(self):
        from repro.service import portfolio as portfolio_mod
        from repro.service import register_scheduler

        entered = threading.Event()
        release = threading.Event()

        def slow(graph, num_pes):
            entered.set()
            release.wait(10.0)
            return portfolio_mod._SCHEDULERS["nstr"](graph, num_pes)

        register_scheduler("slowtest", slow)
        try:
            slots = threading.BoundedSemaphore(2)
            doc = {**self.doc, "schedulers": ["slowtest"]}
            responses = []
            lock = threading.Lock()

            def call():
                response = self.service.handle(dict(doc), slots)
                with lock:
                    responses.append(response)

            leader = threading.Thread(target=call)
            leader.start()
            assert entered.wait(10.0)  # the leader computes, holding a slot
            followers = [threading.Thread(target=call) for _ in range(3)]
            for t in followers:
                t.start()
            time.sleep(0.2)  # let the followers reach the in-flight wait
            # blocked followers must not pin the second slot: unrelated
            # work could still claim it while the leader computes
            assert slots.acquire(timeout=5.0)
            slots.release()
            release.set()
            leader.join(10.0)
            for t in followers:
                t.join(10.0)
            assert len(responses) == 4 and all(r["ok"] for r in responses)
            assert self.service.computed == 1
        finally:
            release.set()
            portfolio_mod._SCHEDULERS.pop("slowtest", None)


class TestSimulateOp:
    """The DES-validation endpoint: fingerprint-keyed like schedule."""

    def setup_method(self):
        self.service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        self.graph = random_canonical_graph("fft", 8, seed=1)
        self.doc = {
            "op": "simulate",
            "graph": graph_to_dict(self.graph),
            "num_pes": 8,
        }

    def test_cold_then_cached(self):
        cold = self.service.handle(dict(self.doc))
        warm = self.service.handle(dict(self.doc))
        assert cold["ok"] and cold["op"] == "simulate"
        assert cold["cached"] is False and warm["cached"] == "lru"
        assert cold["sim_makespan"] == warm["sim_makespan"]
        assert cold["makespan"] > 0 and not cold["deadlocked"]
        assert cold["error_pct"] is not None
        assert self.service.simulated == 1  # one DES execution only

    def test_key_is_sim_tagged_and_distinct_from_schedule(self):
        sim = self.service.handle(dict(self.doc))
        sched = self.service.handle({**self.doc, "op": "schedule"})
        assert ":sim:" in sim["key"]
        assert sim["key"] != sched["key"]
        assert sim["key"].startswith(f"{SCHEDULE_KEY_VERSION}:")
        # the schedule request must not have been served from the
        # simulation entry or vice versa
        assert sched["cached"] is False

    def test_params_change_the_key(self):
        base = self.service.handle(dict(self.doc))
        for extra in ({"policy": "pe"}, {"pacing": "greedy"},
                      {"capacity": 4}, {"scheduler": "rlx"}):
            other = self.service.handle({**self.doc, **extra})
            assert other["key"] != base["key"], extra
            assert other["cached"] is False

    def test_engine_not_in_key_results_interchangeable(self):
        indexed = self.service.handle(dict(self.doc))
        reference = self.service.handle({**self.doc, "engine": "reference"})
        assert reference["cached"] == "lru"  # same key: engines agree
        assert reference["sim_makespan"] == indexed["sim_makespan"]

    def test_no_cache_forces_a_fresh_simulation(self):
        self.service.handle(dict(self.doc))
        forced = self.service.handle({**self.doc, "no_cache": True})
        assert forced["cached"] is False
        assert self.service.simulated == 2

    def test_renamed_isomorphic_copy_recomputes(self):
        first = self.service.handle(dict(self.doc))
        renamed = self.service.handle({
            "op": "simulate",
            "graph": graph_to_dict(relabel(self.graph)),
            "num_pes": 8,
        })
        # same fingerprint/key, but blocked/channel diagnostics name
        # nodes, so a cross-document hit recomputes instead of remapping
        assert renamed["key"] == first["key"]
        assert renamed["cached"] is False
        assert renamed["sim_makespan"] == first["sim_makespan"]
        assert self.service.simulated == 2

    def test_deadlock_reported_with_full_channels(self, fig9_graph1):
        response = self.service.handle({
            "op": "simulate",
            "graph": graph_to_dict(fig9_graph1),
            "num_pes": 8,
            "capacity": 1,
        })
        assert response["ok"] and response["deadlocked"]
        assert response["blocked"]
        assert response["full_channels"]
        for ch in response["full_channels"]:
            assert ch["occupancy"] == ch["capacity"] == 1
        assert response["error_pct"] is None

    def test_persisted_entries_survive_restart(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        first = ScheduleService(cache=ScheduleCache(path, capacity=8))
        cold = first.handle(dict(self.doc))
        reopened = ScheduleService(cache=ScheduleCache(path, capacity=8))
        warm = reopened.handle(dict(self.doc))
        assert warm["cached"] == "store"
        assert warm["sim_makespan"] == cold["sim_makespan"]
        assert reopened.simulated == 0

    def test_invalid_parameters_rejected(self):
        for bad in ({"scheduler": "nstr"}, {"scheduler": "heft"},
                    {"policy": "x"}, {"pacing": "x"},
                    {"engine": "x"}, {"capacity": 0}):
            response = self.service.handle({**self.doc, **bad})
            assert not response["ok"], bad

    def test_simulate_coalesces_identical_requests(self):
        n = 4
        barrier = threading.Barrier(n)
        responses = []
        lock = threading.Lock()

        def fire():
            barrier.wait()
            response = self.service.handle(dict(self.doc))
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["ok"] for r in responses)
        assert self.service.simulated == 1
        assert {r["sim_makespan"] for r in responses} == {
            responses[0]["sim_makespan"]
        }


@pytest.fixture
def live_server():
    service = ScheduleService(cache=ScheduleCache(None, capacity=64))
    with ScheduleServer(service, port=0, workers=2) as server:
        yield server


class TestServerClient:
    def test_ping_schedule_stats_roundtrip(self, live_server):
        g = random_canonical_graph("chain", 6, seed=0)
        with ServiceClient(port=live_server.port) as client:
            assert client.ping()["ok"]
            first = client.schedule(g, 4)
            second = client.schedule(g, 4)
            assert first["cached"] is False and second["cached"] == "lru"
            assert client.stats()["served"] == 2

    def test_simulate_roundtrip(self, live_server):
        g = random_canonical_graph("fft", 8, seed=2)
        with ServiceClient(port=live_server.port) as client:
            first = client.simulate(g, 8)
            second = client.simulate(g, 8)
            assert first["ok"] and first["op"] == "simulate"
            assert first["cached"] is False and second["cached"] == "lru"
            assert first["sim_makespan"] == second["sim_makespan"]
            assert "graph" not in first  # the requester already has it
            stats = client.stats()
            assert stats["simulated"] == 1
            assert stats["sim_schedulers"] == ["lts", "rlx", "work"]

    def test_simulate_engines_agree_over_the_wire(self, live_server):
        g = random_canonical_graph("gaussian", 8, seed=1)
        with ServiceClient(port=live_server.port) as client:
            indexed = client.simulate(g, 8, engine="indexed")
            reference = client.simulate(g, 8, engine="reference",
                                        no_cache=True)
            assert indexed["sim_makespan"] == reference["sim_makespan"]
            assert indexed["error_pct"] == reference["error_pct"]

    def test_service_error_raised_for_bad_request(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            with pytest.raises(ServiceError):
                g = random_canonical_graph("chain", 4, seed=0)
                client.schedule(g, 4, schedulers=["bogus"])
            with pytest.raises(ServiceError):
                g = random_canonical_graph("chain", 4, seed=0)
                client.simulate(g, 4, scheduler="nstr")

    def test_malformed_line_gets_error_response(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            response = client.request_raw(b"this is not json\n")
            assert response["ok"] is False

    def test_more_clients_than_workers_are_all_served(self):
        # connections must not pin worker slots: with a single worker
        # slot, a second concurrent client still gets answers while the
        # first connection stays open and idle
        service = ScheduleService(cache=ScheduleCache(None, capacity=8))
        with ScheduleServer(service, port=0, workers=1) as server:
            g = random_canonical_graph("chain", 4, seed=0)
            with ServiceClient(port=server.port, timeout=5.0) as first:
                assert first.ping()["ok"]
                with ServiceClient(port=server.port, timeout=5.0) as second:
                    assert second.ping()["ok"]
                    assert second.schedule(g, 2)["ok"]
                assert first.schedule(g, 2)["ok"]

    def test_shutdown_is_graceful(self):
        service = ScheduleService()
        server = ScheduleServer(service, port=0, workers=2).start()
        with ServiceClient(port=server.port) as client:
            assert client.shutdown()["ok"]
        server.join()
        with pytest.raises(OSError):
            ServiceClient(port=server.port, timeout=0.5)

    def test_shutdown_permitted_only_from_loopback(self):
        class FakePeer:
            def __init__(self, host):
                self._host = host

            def getpeername(self):
                return (self._host, 40000)

        service = ScheduleService()
        server = ScheduleServer(service, port=0)
        assert server._shutdown_permitted(FakePeer("127.0.0.1"))
        assert not server._shutdown_permitted(FakePeer("192.0.2.7"))
        remote_ok = ScheduleServer(service, port=0, allow_remote_shutdown=True)
        assert remote_ok._shutdown_permitted(FakePeer("192.0.2.7"))

    def test_refused_shutdown_keeps_server_alive(self, monkeypatch):
        monkeypatch.setattr(
            ScheduleServer, "_shutdown_permitted", lambda self, conn: False
        )
        service = ScheduleService()
        with ScheduleServer(service, port=0, workers=1) as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError, match="shutdown refused"):
                    client.shutdown()
                assert client.ping()["ok"]


class TestLoadgen:
    def test_pool_is_diverse_and_deterministic(self):
        lines = build_request_pool(scenario="fig10", pool=8)
        assert lines == build_request_pool(scenario="fig10", pool=8)
        docs = [json.loads(line) for line in lines]
        assert len(lines) == 8
        assert len({d["num_pes"] for d in docs}) > 1  # mixes PE counts

    def test_percentile_nearest_rank(self):
        xs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(xs, 50) == 20.0
        assert percentile(xs, 100) == 40.0
        # rank = ceil(q/100 * N), exactly: p50 of 1..10 is the 5th value
        assert percentile(list(range(1, 11)), 50) == 5
        assert percentile(list(range(1, 501)), 99) == 495
        assert percentile(xs, 0) == 10.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_loadgen_against_live_server(self, live_server):
        report = run_loadgen(
            port=live_server.port, requests=30, workers=2, pool=4,
            scenario="fig10", seed=1,
        )
        assert report.requests == 30 and report.errors == 0
        assert report.tiers.get("cold", 0) <= 4 + 2  # pool + races
        assert report.hit_rate > 0.5
        assert report.summary()["p50_ms"] > 0
        assert "req/s" in report.table()

    def test_simulate_pool_builds_simulate_lines(self):
        lines = build_request_pool(scenario="fig10", pool=4, op="simulate")
        docs = [json.loads(line) for line in lines]
        assert all(d["op"] == "simulate" for d in docs)
        assert all(d["scheduler"] == "lts" for d in docs)
        assert all("objective" not in d for d in docs)
        with pytest.raises(ValueError, match="unknown request op"):
            build_request_pool(op="teleport")

    def test_loadgen_simulate_against_live_server(self, live_server):
        report = run_loadgen(
            port=live_server.port, requests=12, workers=2, pool=3,
            scenario="fig10", seed=1, op="simulate",
        )
        assert report.requests == 12 and report.errors == 0
        assert report.hit_rate > 0.5  # Zipf replay hits the sim cache

    def test_loadgen_fails_fast_without_server(self):
        with pytest.raises(OSError):
            run_loadgen(port=1, requests=2, workers=1, pool=2)

    def test_refused_responses_are_errors_not_requests(self, live_server):
        # every request names an unknown scheduler, so every answer is
        # ok:false — nothing may be double-counted as a served request
        with pytest.raises(ConnectionError, match="no request completed"):
            run_loadgen(port=live_server.port, requests=6, workers=2,
                        pool=2, schedulers=["bogus"], seed=0)


class TestServiceCli:
    def test_request_and_loadgen_cli(self, live_server, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        save_graph(random_canonical_graph("chain", 6, seed=0), str(graph_path))
        out_path = tmp_path / "sched.json"
        rc = main([
            "request", str(graph_path), "-p", "4",
            "--schedulers", "rlx,nstr",
            "--host", "127.0.0.1", "--port", str(live_server.port),
            "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wins makespan" in out
        assert json.loads(out_path.read_text())["num_pes"] == 4

        json_out = tmp_path / "loadgen.json"
        csv_out = tmp_path / "lat.csv"
        rc = main([
            "loadgen", "--requests", "20", "--workers", "2", "--pool", "3",
            "--port", str(live_server.port),
            "--json", str(json_out), "--csv", str(csv_out),
        ])
        assert rc == 0
        report = json.loads(json_out.read_text())
        assert report["requests"] == 20 and report["errors"] == 0
        assert csv_out.read_text().startswith("index,latency_ms")

    def test_request_simulate_cli(self, live_server, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        save_graph(random_canonical_graph("fft", 8, seed=0), str(graph_path))
        out_path = tmp_path / "sim.json"
        rc = main([
            "request", str(graph_path), "-p", "8", "--simulate",
            "--schedulers", "rlx", "--port", str(live_server.port),
            "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated makespan" in out
        response = json.loads(out_path.read_text())
        assert response["op"] == "simulate"
        assert response["scheduler"] == "rlx"
        assert response["sim_makespan"] > 0

    def test_loadgen_simulate_cli(self, live_server, capsys):
        rc = main([
            "loadgen", "--requests", "8", "--workers", "2", "--pool", "2",
            "--simulate", "--port", str(live_server.port),
        ])
        assert rc == 0
        assert "req/s" in capsys.readouterr().out

    def test_request_cli_unreachable_service(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        save_graph(random_canonical_graph("chain", 4, seed=0), str(graph_path))
        rc = main(["request", str(graph_path), "-p", "2", "--port", "1"])
        assert rc == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_serve_cli_runs_and_shuts_down(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
        # pick a free port first
        import socket as socketlib

        with socketlib.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        rc_box = {}

        def run_serve():
            rc_box["rc"] = main([
                "serve", "--port", str(port), "-w", "2",
                "--allow-remote-shutdown",
            ])

        thread = threading.Thread(target=run_serve)
        thread.start()
        g = random_canonical_graph("chain", 4, seed=0)
        client = None
        for _ in range(100):
            try:
                client = ServiceClient(port=port, timeout=5.0)
                break
            except OSError:
                import time

                time.sleep(0.05)
        assert client is not None
        with client:
            assert client.schedule(g, 2)["ok"]
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive() and rc_box["rc"] == 0
        # the persistent schedule store was created and holds the entry
        store = tmp_path / "svc" / "schedules.jsonl"
        assert store.exists()
        assert len(store.read_text().strip().splitlines()) == 1


def _permuted_copy(graph: CanonicalGraph, order_seed: int) -> CanonicalGraph:
    """Same specs and edges, nodes inserted in a shuffled order."""
    import random as random_mod

    names = list(graph.nodes)
    random_mod.Random(order_seed).shuffle(names)
    clone = CanonicalGraph()
    for v in names:
        clone.add_node(graph.spec(v))
    for u, v in graph.edges:
        clone.nx.add_edge(u, v)
    return clone


def _verify_witness(src: CanonicalGraph, dst: CanonicalGraph, mapping) -> None:
    assert mapping is not None
    assert set(mapping) == set(src.nodes)
    assert set(mapping.values()) == set(dst.nodes)
    assert {(mapping[u], mapping[v]) for u, v in src.edges} == set(dst.edges)
    for v in src.nodes:
        a, b = src.spec(v), dst.spec(mapping[v])
        assert (a.kind, a.input_volume, a.output_volume) == (
            b.kind, b.input_volume, b.output_volume
        )


class TestIsomorphismAutomorphismRich:
    """Witness search on graphs with large automorphism groups: every
    1-WL class is a non-trivial orbit, so the individualization-
    refinement loop (not plain refinement) does the work."""

    @staticmethod
    def _alternating_cycle(n_pairs: int, prefix: str = "") -> CanonicalGraph:
        # C_{2n} with alternating orientation: even nodes feed both odd
        # neighbours; uniform volumes make all evens (and all odds)
        # 1-WL-equivalent, with a dihedral automorphism group
        g = CanonicalGraph()
        n = 2 * n_pairs
        for i in range(n):
            g.add_task(f"{prefix}{i}", 8, 8)
        for i in range(0, n, 2):
            g.add_edge(f"{prefix}{i}", f"{prefix}{(i + 1) % n}")
            g.add_edge(f"{prefix}{i}", f"{prefix}{(i - 1) % n}")
        return g

    @staticmethod
    def _complete_bipartite(k: int, prefix: str = "") -> CanonicalGraph:
        g = CanonicalGraph()
        for i in range(k):
            g.add_task(f"{prefix}a{i}", 4, 4)
        for j in range(k):
            g.add_task(f"{prefix}b{j}", 4, 4)
        for i in range(k):
            for j in range(k):
                g.add_edge(f"{prefix}a{i}", f"{prefix}b{j}")
        return g

    @staticmethod
    def _uniform_layered(layers: int, width: int, prefix: str = "") -> CanonicalGraph:
        g = CanonicalGraph()
        for li in range(layers):
            for w in range(width):
                g.add_task(f"{prefix}L{li}_{w}", 4, 4)
        for li in range(1, layers):
            for w in range(width):
                for pw in range(width):
                    g.add_edge(f"{prefix}L{li - 1}_{pw}", f"{prefix}L{li}_{w}")
        return g

    def test_alternating_cycle_witness(self):
        src = self._alternating_cycle(4)
        dst = _permuted_copy(self._alternating_cycle(4, prefix="x"), 3)
        _verify_witness(src, dst, find_isomorphism(src, dst))

    def test_complete_bipartite_witness(self):
        src = self._complete_bipartite(4)
        dst = _permuted_copy(self._complete_bipartite(4, prefix="y"), 5)
        _verify_witness(src, dst, find_isomorphism(src, dst))

    def test_uniform_layered_witness(self):
        src = self._uniform_layered(3, 4)
        dst = _permuted_copy(self._uniform_layered(3, 4, prefix="z"), 7)
        _verify_witness(src, dst, find_isomorphism(src, dst))

    def test_different_cycle_lengths_yield_none(self):
        # C_8 vs two C_4s: same node count, same degrees, classic
        # 1-WL-equivalent pair — the verified witness must reject it
        c8 = self._alternating_cycle(4)
        two_c4 = self._alternating_cycle(2, prefix="p")
        extra = self._alternating_cycle(2, prefix="q")
        for v in extra.nodes:
            two_c4.add_node(extra.spec(v))
        for u, v in extra.edges:
            two_c4.nx.add_edge(u, v)
        assert len(c8) == len(two_c4)
        assert c8.number_of_edges() == two_c4.number_of_edges()
        assert find_isomorphism(c8, two_c4) is None

    def test_fingerprint_stable_under_node_permutation(self):
        for build in (
            lambda p: self._alternating_cycle(4, prefix=p),
            lambda p: self._complete_bipartite(4, prefix=p),
            lambda p: self._uniform_layered(3, 4, prefix=p),
        ):
            base = build("")
            fp = graph_fingerprint(base)
            for seed in range(4):
                assert graph_fingerprint(_permuted_copy(base, seed)) == fp

    def test_fingerprint_stable_under_permutation_random_families(self):
        for topo, size in (("layered", 64), ("serpar", 60), ("fft", 16)):
            g = random_canonical_graph(topo, size, seed=2)
            fp = graph_fingerprint(g)
            for seed in range(3):
                assert graph_fingerprint(_permuted_copy(g, seed)) == fp


class TestCacheCompaction:
    def _fill(self, path, keys, prefix="sv2:", pad=3000):
        # lines are padded past ScheduleCache.COMPACT_MIN_BYTES so the
        # auto-compaction thresholds are exercised with realistic sizes
        cache = ScheduleCache(path, capacity=64)
        for k in keys:
            cache.put(f"{prefix}{k}", {"v": k, "pad": "x" * pad})
        return cache

    def test_dead_bytes_from_duplicates_are_reclaimed(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        self._fill(path, ["a", "b", "c"])
        # simulate older generations: re-append newer lines for the same
        # keys (an old server without the in-memory index did exactly this)
        with open(path, "ab") as fh:
            for k in ("a", "b", "c"):
                fh.write(json.dumps(
                    {"key": f"sv2:{k}", "entry": {"v": k + "2", "pad": "y" * 200}}
                ).encode() + b"\n")
        before = path.stat().st_size
        cache = ScheduleCache(path, capacity=64)
        # the last occurrence wins the index; earlier lines are dead
        assert cache.dead_bytes() == 0  # auto-compacted on load (>50% dead)
        assert cache.counters()["compactions"] == 1
        assert path.stat().st_size < before
        for k in ("a", "b", "c"):
            entry, tier = cache.get(f"sv2:{k}")
            assert entry["v"] == k + "2" and tier == "store"

    def test_explicit_compact_shrinks_and_hits_resolve(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        self._fill(path, ["a", "b"])
        with open(path, "ab") as fh:
            fh.write(b'{"torn": \n')  # garbage lines are dead bytes
            fh.write(b"not json at all\n" * 4)
        cache = ScheduleCache(path, capacity=64)
        dead = cache.dead_bytes()
        assert dead > 0
        before = path.stat().st_size
        reclaimed = cache.compact()
        assert reclaimed == dead
        assert path.stat().st_size == before - reclaimed
        assert cache.dead_bytes() == 0
        assert cache.get("sv2:a")[0]["v"] == "a"
        # a reload sees the compacted file
        reopened = ScheduleCache(path, capacity=64)
        assert reopened.get("sv2:b")[0]["v"] == "b"

    def test_retain_drops_superseded_versions(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        cache = self._fill(path, ["old1", "old2", "old3"], prefix="sv1:")
        cache.put("sv2:new", {"v": "new", "pad": "z" * 200})
        before = path.stat().st_size
        reopened = ScheduleCache(
            path, capacity=64, retain=lambda k: k.startswith("sv2:")
        )
        # sv1 lines were never indexed -> dead -> auto-compacted away
        assert reopened.counters()["compactions"] == 1
        assert path.stat().st_size < before
        assert reopened.get("sv2:new")[0]["v"] == "new"
        assert reopened.get("sv1:old1") is None

    def test_puts_after_compaction_land_at_correct_offsets(self, tmp_path):
        path = tmp_path / "schedules.jsonl"
        cache = self._fill(path, ["a", "b", "c", "d"])
        with open(path, "ab") as fh:
            fh.write(b"garbage\n" * 40)
        cache = ScheduleCache(path, capacity=1)  # tiny LRU: force store reads
        cache.compact()
        cache.put("sv2:e", {"v": "e"})
        for k in ("a", "b", "c", "d", "e"):
            assert cache.get(f"sv2:{k}")[0]["v"] == k


class TestQuantiles:
    def test_interpolated_quantile_values(self):
        from repro.service import quantile

        xs = [10.0, 20.0, 30.0, 40.0]
        assert quantile(xs, 0) == 10.0
        assert quantile(xs, 100) == 40.0
        assert quantile(xs, 50) == 25.0  # interpolates, unlike nearest rank
        assert quantile(xs, 25) == pytest.approx(17.5)
        assert quantile(list(range(1, 11)), 50) == 5.5
        assert quantile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            quantile([], 50)
        with pytest.raises(ValueError):
            quantile(xs, 101)

    def test_summary_uses_interpolated_quantiles(self):
        from repro.service.loadgen import LoadgenReport

        report = LoadgenReport(
            requests=4, workers=1, pool=2, zipf=1.0, objective="makespan",
            no_cache=False, elapsed=1.0,
            latencies_ms=[10.0, 20.0, 30.0, 40.0],
        )
        assert report.summary()["p50_ms"] == 25.0
        assert report.small_sample  # 4 < MIN_RELIABLE_SAMPLES
        assert "warning" in report.table()
        assert report.to_dict()["small_sample"] is True

    def test_wire_bytes_reported(self, live_server):
        report = run_loadgen(
            port=live_server.port, requests=20, workers=2, pool=3,
            scenario="fig10", seed=2,
        )
        assert report.bytes_sent > 0 and report.bytes_received > 0
        assert report.wire_bytes_per_s > 0
        doc = report.to_dict()
        assert doc["bytes_sent"] == report.bytes_sent
        assert doc["wire_bytes_per_s"] > 0


class TestServiceTelemetry:
    """Telemetry threaded through the request path: metrics/trace ops,
    per-phase histograms, and counter semantics under coalescing."""

    def setup_method(self):
        self.service = ScheduleService(cache=ScheduleCache(None, capacity=16))
        self.graph = random_canonical_graph("fft", 8, seed=1)
        self.doc = {
            "op": "schedule",
            "graph": graph_to_dict(self.graph),
            "num_pes": 8,
        }

    def test_metrics_op_text_and_snapshot(self):
        self.service.handle(dict(self.doc))
        self.service.handle(dict(self.doc))
        metrics = self.service.handle({"op": "metrics"})
        assert metrics["ok"] and metrics["telemetry_enabled"]
        assert "# TYPE service_requests counter" in metrics["text"]
        assert "# TYPE cache_hits counter" in metrics["text"]
        snap = metrics["snapshot"]
        requests = {
            (s["labels"]["op"], s["labels"]["outcome"]): s["value"]
            for s in snap["service.requests"]["series"]
        }
        assert requests[("schedule", "ok")] == 2
        wins = sum(s["value"] for s in snap["portfolio.wins"]["series"])
        assert wins == snap["portfolio.races"]["series"][0]["value"] == 1
        hits = {
            s["labels"]["tier"]: s["value"]
            for s in snap["cache.hits"]["series"]
        }
        assert hits.get("lru", 0) == 1

    def test_request_counter_outcomes(self):
        self.service.handle(dict(self.doc))
        self.service.handle({"op": "nope"})
        self.service.handle({"op": "schedule"})  # refused: no graph
        snap = self.service.handle({"op": "metrics"})["snapshot"]
        requests = {
            (s["labels"]["op"], s["labels"]["outcome"]): s["value"]
            for s in snap["service.requests"]["series"]
        }
        assert requests[("schedule", "ok")] == 1
        assert requests[("schedule", "error")] == 1
        assert requests[("unknown", "error")] == 1  # bounded cardinality

    def _phase_counts(self, op="schedule"):
        snap = self.service.handle({"op": "metrics"})["snapshot"]
        family = snap.get("service.phase_ms", {"series": ()})
        return {
            s["labels"]["phase"]: s["count"]
            for s in family["series"]
            if s["labels"]["op"] == op
        }

    def test_coalesced_followers_do_not_double_count_phases(self):
        line = json.dumps(self.doc).encode()
        n = 6
        barrier = threading.Barrier(n)

        def fire():
            barrier.wait()
            self.service.serve_line_slow(line)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert self.service.computed == 1
        phases = self._phase_counts()
        # compute-side phases belong to the single leader: followers
        # coalesce or hit the cache, never re-record a portfolio race
        assert phases["portfolio"] == 1
        # every request fingerprints and probes the cache for itself
        assert phases["fingerprint"] == n
        assert phases["cache"] >= n

    def test_forced_recompute_counts_a_second_race(self):
        self.service.handle(dict(self.doc))
        self.service.handle({**self.doc, "no_cache": True})
        phases = self._phase_counts()
        assert phases["portfolio"] == 2
        snap = self.service.handle({"op": "metrics"})["snapshot"]
        assert snap["portfolio.races"]["series"][0]["value"] == 2
        assert self.service.computed == 2

    def test_trace_op_returns_spans_and_chrome(self):
        line = json.dumps(self.doc).encode()
        self.service.serve_line_slow(line)
        self.service.serve_line_slow(line)
        trace = self.service.handle({"op": "trace", "n": 10})
        assert trace["ok"] and trace["count"] == 2
        assert trace["recorded"] == 2 and trace["capacity"] >= 10
        cold, warm = trace["spans"]
        cold_phases = [p["phase"] for p in cold["phases"]]
        assert "fingerprint" in cold_phases and "portfolio" in cold_phases
        assert any(p.startswith("cand:") for p in cold_phases)
        assert "portfolio" not in [p["phase"] for p in warm["phases"]]
        assert warm["meta"]["tier"] == "lru"
        assert all(e["ph"] == "X" and e["pid"] == 1 for e in trace["chrome"])
        json.dumps(trace["chrome"])  # viewer-loadable

    def test_trace_op_validates_n(self):
        assert not self.service.handle({"op": "trace", "n": 0})["ok"]
        assert not self.service.handle({"op": "trace", "n": "x"})["ok"]

    def test_trace_op_errors_when_telemetry_disabled(self):
        from repro.obs import Telemetry

        service = ScheduleService(
            cache=ScheduleCache(None, capacity=4),
            telemetry=Telemetry(enabled=False),
        )
        response = service.handle({"op": "trace"})
        assert not response["ok"] and "disabled" in response["error"]
        # metrics still answers: the counters stay live without spans
        metrics = service.handle({"op": "metrics"})
        assert metrics["ok"] and not metrics["telemetry_enabled"]
        assert "service.phase_ms" not in metrics["snapshot"]

    def test_stats_reports_wire_memo_and_evictions(self):
        line = json.dumps(self.doc).encode()
        self.service.serve_line_slow(line)
        stats = self.service.handle({"op": "stats"})
        wm = stats["wire_memo"]
        assert wm["bytes"] > 0 and wm["budget"] > 0
        assert wm["occupancy"] == pytest.approx(
            wm["bytes"] / wm["budget"], abs=5e-5  # reported at 4 decimals
        )
        assert wm["lines"] == 1 and wm["clears"] == 0
        ev = stats["evictions"]
        assert set(ev) == {
            "lru", "wire_memo_clears", "fp_memo_clears", "ig_memo_clears"
        }
        assert stats["telemetry"] is True

    def test_legacy_counter_attributes_track_registry(self):
        self.service.handle(dict(self.doc))
        self.service.handle(dict(self.doc))
        snap = self.service.handle({"op": "metrics"})["snapshot"]
        assert self.service.served == snap["service.served"]["series"][0]["value"]
        assert self.service.computed == 1

    def test_metrics_and_trace_over_the_wire(self, live_server):
        g = random_canonical_graph("chain", 6, seed=0)
        with ServiceClient(port=live_server.port) as client:
            client.schedule(g, 4)
            client.schedule(g, 4)
            metrics = client.metrics()
            assert "service_requests" in metrics["text"]
            trace = client.trace(n=5)
            assert trace["count"] >= 1
            assert trace["chrome"]

    def test_loadgen_error_kind_invariant(self, live_server, monkeypatch):
        # a pool mixing valid requests with a refused one: the report's
        # columns must partition the workload exactly
        from repro.service import loadgen as loadgen_mod

        real_pool = loadgen_mod.build_request_pool

        def mixed_pool(**kwargs):
            lines = real_pool(**kwargs)
            bad = json.loads(lines[0])
            bad["schedulers"] = ["bogus"]
            return [*lines[:-1], json.dumps(bad).encode() + b"\n"]

        monkeypatch.setattr(loadgen_mod, "build_request_pool", mixed_pool)
        sent = 24
        report = run_loadgen(
            port=live_server.port, requests=sent, workers=2, pool=4, seed=3,
        )
        assert report.errors > 0
        assert report.error_kinds.get("refused") == report.errors
        assert report.requests + sum(report.error_kinds.values()) == sent
        assert "errors by kind" in report.table()
        assert report.to_dict()["error_kinds"] == report.error_kinds

    def test_loadgen_reports_server_phases(self, live_server):
        report = run_loadgen(
            port=live_server.port, requests=20, workers=2, pool=3, seed=1,
        )
        assert report.server_phases  # telemetry is on by default
        key = next(iter(report.server_phases))
        entry = report.server_phases[key]
        assert entry["count"] >= 1 and entry["total_ms"] >= 0.0
        assert "server phases" in report.table()
        assert report.to_dict()["server_phases"] == report.server_phases


class TestObservabilityCli:
    def test_profile_json_export(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main([
            "profile", "fig10", "--cells", "1", "--limit", "5",
            "--json", str(out),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["scenario"] == "fig10" and doc["cells"] == 1
        assert doc["total_calls"] > 0
        assert doc["functions"]
        row = doc["functions"][0]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)

    def test_serve_trace_dir_writes_spans(self, tmp_path):
        # the serving stack wired exactly the way `repro serve
        # --trace-dir` assembles it
        from repro.obs import MetricsRegistry, Telemetry

        trace_dir = tmp_path / "spans"
        g = random_canonical_graph("chain", 5, seed=0)
        telemetry = Telemetry(registry=MetricsRegistry(), trace_dir=trace_dir)
        service = ScheduleService(
            cache=ScheduleCache(None, capacity=8), telemetry=telemetry
        )
        with ScheduleServer(service, port=0, workers=1) as server:
            with ServiceClient(port=server.port) as client:
                client.schedule(g, 2)
                client.schedule(g, 2)  # wire fastpath: no second span
        telemetry.close()
        files = sorted(trace_dir.glob("spans-*.jsonl"))
        assert files
        spans = [
            json.loads(line)
            for path in files
            for line in path.read_text().splitlines()
        ]
        assert spans
        assert all(s["op"] == "schedule" for s in spans)
        assert all(s["wall_ms"] > 0 for s in spans)
        assert all("trace_id" in s for s in spans)


class TestDiagnosisOps:
    """The profile and flight service ops, the flight-event sequences
    the request path emits, and the deadlock → flight-dump trigger."""

    @staticmethod
    def _service(**telemetry_kwargs):
        from repro.obs import Telemetry

        return ScheduleService(
            cache=ScheduleCache(None, capacity=16),
            telemetry=Telemetry(**telemetry_kwargs),
        )

    def test_profile_op_requires_a_profiler(self):
        service = self._service()
        response = service.handle({"op": "profile"})
        assert response["ok"] is False
        assert "--profile-hz" in response["error"]

    def test_profile_op_serves_the_aggregate(self):
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler(hz=400.0).start()
        service = self._service(profiler=profiler)
        g = random_canonical_graph("fft", 8, seed=1)
        service.handle({"op": "schedule", "graph": graph_to_dict(g),
                        "num_pes": 8})
        deadline = time.time() + 5.0
        while profiler.samples == 0 and time.time() < deadline:
            time.sleep(0.01)
        response = service.handle({"op": "profile", "n": 3})
        service.telemetry.close()
        assert response["ok"] and response["op"] == "profile"
        assert response["hz"] == 400.0
        assert response["samples"] > 0
        assert len(response["top_stacks"]) <= 3
        assert response["collapsed"].strip()
        assert "speedscope" not in response
        with_doc = service.handle({"op": "profile", "speedscope": True})
        assert with_doc["speedscope"]["profiles"][0]["type"] == "sampled"

    def test_profile_op_validates_n(self):
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler()
        service = self._service(profiler=profiler)
        assert service.handle({"op": "profile", "n": 0})["ok"] is False
        assert service.handle({"op": "profile", "n": "x"})["ok"] is False

    def test_flight_sequence_for_schedule_requests(self):
        service = self._service()
        g = random_canonical_graph("fft", 8, seed=1)
        doc = {"op": "schedule", "graph": graph_to_dict(g), "num_pes": 8}
        service.handle(dict(doc))
        kinds = [e["kind"] for e in service.telemetry.flight.last()]
        # cold request: admitted, missed both tiers, led its own compute
        assert kinds == [
            "request", "cache_miss", "coalesce_leader", "dispatch"
        ]
        service.handle(dict(doc))
        kinds = [e["kind"] for e in service.telemetry.flight.last()]
        assert kinds[-2:] == ["request", "cache_hit"]
        hit = service.telemetry.flight.last(1)[0]
        assert hit["tier"] == "lru"
        assert len(hit["key"]) <= ScheduleService._FLIGHT_KEY_CHARS

    def test_flight_records_refused_requests(self):
        service = self._service()
        service.handle({"op": "schedule"})  # no graph
        kinds = [e["kind"] for e in service.telemetry.flight.last()]
        assert kinds[-1] == "refused"
        assert service.telemetry.flight.last()[-1]["op"] == "schedule"

    def test_control_ops_stay_out_of_the_ring(self):
        service = self._service()
        service.handle({"op": "ping"})
        service.handle({"op": "stats"})
        service.handle({"op": "metrics"})
        service.handle({"op": "flight"})
        assert len(service.telemetry.flight) == 0

    def test_flight_op_returns_events_and_summary(self):
        service = self._service()
        g = random_canonical_graph("chain", 5, seed=0)
        service.handle({"op": "schedule", "graph": graph_to_dict(g),
                        "num_pes": 2})
        response = service.handle({"op": "flight", "n": 2})
        assert response["ok"] and response["op"] == "flight"
        assert response["capacity"] == service.telemetry.flight.capacity
        assert response["recorded"] >= 4
        assert len(response["events"]) == 2
        assert response["dumps"] == [] and response["suppressed"] == 0

    def test_flight_op_dump_needs_a_directory(self, tmp_path):
        from repro.obs import FlightRecorder

        service = self._service()
        refused = service.handle({"op": "flight", "dump": True})
        assert refused["ok"] is False and "--flight-dir" in refused["error"]

        service = self._service(
            flight=FlightRecorder(dump_dir=tmp_path)
        )
        service.telemetry.flight.record("x")
        response = service.handle({"op": "flight", "dump": True})
        assert response["ok"]
        assert response["dumped"].endswith(".jsonl")
        assert list(tmp_path.glob("flight-*-manual.jsonl"))

    def test_eviction_events_reach_the_flight_ring(self):
        from repro.obs import Telemetry

        service = ScheduleService(
            cache=ScheduleCache(None, capacity=2), telemetry=Telemetry()
        )
        for seed in range(3):
            g = random_canonical_graph("chain", 5, seed=seed)
            service.handle({"op": "schedule", "graph": graph_to_dict(g),
                            "num_pes": 2})
        evictions = [
            e for e in service.telemetry.flight.last()
            if e["kind"] == "eviction"
        ]
        assert len(evictions) == 1
        assert evictions[0]["tier"] == "lru"

    def test_deadlock_emits_flight_event_and_dump(self, tmp_path, fig9_graph1):
        """Acceptance: a deadlocking served simulate request leaves a
        flight dump whose sequence shows the request being admitted,
        missing the cache, and deadlocking."""
        from repro.obs import FlightRecorder, Telemetry

        telemetry = Telemetry(flight=FlightRecorder(dump_dir=tmp_path))
        service = ScheduleService(
            cache=ScheduleCache(None, capacity=16), telemetry=telemetry
        )
        with ScheduleServer(service, port=0, workers=2) as server:
            with ServiceClient(port=server.port) as client:
                response = client.simulate(
                    fig9_graph1, num_pes=8, capacity=1
                )
        assert response["ok"] and response["deadlocked"]
        (dump,) = tmp_path.glob("flight-*-deadlock.jsonl")
        lines = [json.loads(l) for l in dump.read_text().splitlines()]
        header, *events = lines
        assert header["kind"] == "flight-dump"
        assert header["trigger"] == "deadlock"
        kinds = [e["kind"] for e in events]
        # the admitting request, its cache miss, and the deadlock are
        # all present, in causal order
        assert "request" in kinds and "cache_miss" in kinds
        assert "deadlock" in kinds
        assert kinds.index("request") < kinds.index("cache_miss")
        assert kinds.index("cache_miss") < kinds.index("deadlock")
        deadlock = events[kinds.index("deadlock")]
        assert deadlock["capacity"] == 1 and deadlock["num_pes"] == 8
        assert deadlock["blocked"] > 0 and deadlock["full_channels"] > 0
        request = events[kinds.index("request")]
        assert request["op"] == "simulate"
        # the span and the flight sequence share one trace id
        assert deadlock["trace_id"] == request["trace_id"] is not None

    def test_profile_and_flight_over_the_wire(self):
        from repro.obs import SamplingProfiler, Telemetry

        telemetry = Telemetry(profiler=SamplingProfiler(hz=200.0).start())
        service = ScheduleService(
            cache=ScheduleCache(None, capacity=16), telemetry=telemetry
        )
        g = random_canonical_graph("fft", 8, seed=3)
        with ScheduleServer(service, port=0, workers=2) as server:
            with ServiceClient(port=server.port) as client:
                client.schedule(g, 8)
                profile = client.profile(n=2)
                flight = client.flight(n=3)
        telemetry.close()
        assert profile["ok"] and profile["hz"] == 200.0
        assert flight["ok"]
        assert [e["kind"] for e in flight["events"]][0] in (
            "request", "cache_miss", "coalesce_leader", "dispatch"
        )


class TestOpsConsole:
    def test_two_frames_against_a_live_server(self, live_server):
        import io

        from repro.service import run_top

        g = random_canonical_graph("chain", 6, seed=0)
        with ServiceClient(port=live_server.port) as client:
            client.schedule(g, 4)
        out = io.StringIO()
        rc = run_top(
            "127.0.0.1", live_server.port, interval=0.05,
            iterations=2, out=out, use_ansi=False,
        )
        assert rc == 0
        text = out.getvalue()
        assert text.count("repro top —") == 2
        assert "req/s" in text and "cache hit ratio" in text
        assert "flight events" in text  # the ring saw the schedule
        assert "\x1b[" not in text  # ansi off appends plain frames

    def test_unreachable_server_fails_cleanly(self, capsys):
        from repro.service import run_top

        rc = run_top("127.0.0.1", 1, iterations=1)
        assert rc == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_console_rates_derive_from_deltas(self, live_server):
        from repro.service.console import OpsConsole

        g = random_canonical_graph("chain", 6, seed=1)
        console = OpsConsole("127.0.0.1", live_server.port)
        try:
            first = console.sample()
            assert first["rps"] == 0.0  # no previous tick to diff
            with ServiceClient(port=live_server.port) as client:
                for _ in range(3):
                    client.schedule(g, 4)
            second = console.sample()
            assert second["rps"] > 0.0
            assert len(console.rps_history) == 1
            frame = console.render(second)
            assert f"{live_server.port}" in frame
        finally:
            console.close()


class TestDiagnosisCli:
    def test_metrics_cli_text_and_json(self, live_server, capsys):
        g = random_canonical_graph("chain", 5, seed=0)
        with ServiceClient(port=live_server.port) as client:
            client.schedule(g, 2)
        rc = main(["metrics", f"127.0.0.1:{live_server.port}"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE service_requests counter" in out
        rc = main(["metrics", f"127.0.0.1:{live_server.port}", "--json"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert "service.requests" in snap

    def test_trace_cli_table_and_json(self, live_server, capsys):
        g = random_canonical_graph("chain", 5, seed=1)
        with ServiceClient(port=live_server.port) as client:
            client.schedule(g, 2)
        rc = main(["trace", f"127.0.0.1:{live_server.port}", "-n", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spans shown" in out
        assert "schedule" in out
        rc = main([
            "trace", f"127.0.0.1:{live_server.port}", "-n", "5", "--json",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(l)["op"] == "schedule" for l in lines)

    def test_top_cli(self, live_server, capsys):
        rc = main([
            "top", f"127.0.0.1:{live_server.port}",
            "--iterations", "1", "--interval", "0.01",
        ])
        assert rc == 0
        assert "repro top —" in capsys.readouterr().out

    def test_observer_cli_unreachable(self, capsys):
        for argv in (["metrics", "127.0.0.1:1"], ["trace", "127.0.0.1:1"]):
            assert main(argv) == 1
            assert "cannot reach service" in capsys.readouterr().err

    def test_target_parsing(self):
        from repro.cli import _parse_target
        from repro.service import DEFAULT_PORT

        assert _parse_target("10.0.0.7:9999") == ("10.0.0.7", 9999)
        assert _parse_target("7007") == ("127.0.0.1", 7007)
        assert _parse_target("somehost") == ("somehost", DEFAULT_PORT)

    def test_loadgen_error_rate_gate(self, capsys, monkeypatch, live_server):
        from repro.service import loadgen as loadgen_mod

        real = loadgen_mod.run_loadgen

        def flaky(**kwargs):
            report = real(**kwargs)
            report.errors = 1  # one synthetic failure
            return report

        monkeypatch.setattr("repro.service.run_loadgen", flaky)
        argv = [
            "loadgen", "--requests", "6", "--workers", "1", "--pool", "2",
            "--port", str(live_server.port),
        ]
        # default gate: any error fails
        assert main(list(argv)) == 1
        assert "exceeds the --max-error-rate" in capsys.readouterr().err
        # a tolerant gate lets the same run pass (1 error / 7 attempts)
        assert main(argv + ["--max-error-rate", "0.5"]) == 0

    def test_bench_report_cli(self, tmp_path, capsys, monkeypatch):
        from repro.obs.benchhist import append_record

        monkeypatch.chdir(tmp_path)
        history = tmp_path / "BENCH_history.jsonl"
        metric = {"value": 100.0, "direction": "higher", "unit": "req/s"}
        append_record(history, "service", {"fig10_cached_rps": metric})
        append_record(
            history, "service",
            {"fig10_cached_rps": {**metric, "value": 99.0}},
        )
        rc = main(["bench-report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench service: 2 records" in out
        assert "fig10_cached_rps" in out  # trend table rendered
        assert "verdict: ok" in out
        # a regression past the gate fails only with --check
        append_record(
            history, "service",
            {"fig10_cached_rps": {**metric, "value": 50.0}},
        )
        assert main(["bench-report"]) == 0
        assert "verdict: regression" in capsys.readouterr().out
        assert main(["bench-report", "--check"]) == 1
        capsys.readouterr()

    def test_bench_report_json_and_missing_history(self, tmp_path, capsys):
        from repro.obs.benchhist import append_record

        history = tmp_path / "h.jsonl"
        assert main(["bench-report", "--history", str(history)]) == 1
        assert "no history records" in capsys.readouterr().err
        metric = {"value": 10.0, "direction": "lower", "unit": "ms"}
        append_record(history, "sim", {"p50": metric})
        append_record(history, "sim", {"p50": {**metric, "value": 11.0}})
        rc = main(["bench-report", "--history", str(history), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sim"]["status"] == "ok"
        assert doc["sim"]["metrics"]["p50"]["ratio"] == pytest.approx(1.1)
