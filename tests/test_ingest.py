"""Tests for the zero-copy wire ingest path and the event-loop server.

Three layers of protection:

* **golden array/fingerprint equivalence** — ``ingest_graph_doc`` must
  produce an :class:`IndexedGraph` whose every array (ids, CSR
  adjacency, topo order, volumes, works, labels) matches
  ``freeze(graph_from_dict(doc))`` across the scenario families, and
  whose cg2 fingerprint and scheduled documents are byte-identical;
* **validation parity** — with ``validate=True`` the ingest raises the
  same exception types and messages as ``graph_from_dict`` for every
  malformed-document class;
* **service equivalence** — a service on the ingest path answers
  byte-identically (modulo timing fields) to one on the legacy
  networkx path across the layered/serpar/paper/ML sweeps, and the
  wire fast path returns the same bytes the slow path would.
"""

from __future__ import annotations

import json

import pytest

from repro.core import CanonicalGraph, schedule_streaming
from repro.core.graph import CanonicalityError, graph_fingerprint
from repro.core.indexed import IndexedGraph, freeze
from repro.core.ingest import ingest_graph_doc
from repro.core.serialize import (
    graph_from_dict,
    graph_to_dict,
    schedule_doc_bytes,
    schedule_to_dict,
)
from repro.graphs import random_canonical_graph
from repro.service import ScheduleCache, ScheduleServer, ScheduleService, ServiceClient

FAMILIES = [
    ("layered", 128, 64),
    ("layered", 400, 64),
    ("serpar", 120, 32),
    ("chain", 8, 8),
    ("fft", 32, 16),
    ("gaussian", 16, 32),
    ("cholesky", 8, 16),
]


def _ml_graphs():
    from repro.ml import build_resnet50, build_transformer_encoder

    return [
        (build_resnet50(image_size=56, max_parallel=16), 16),
        (
            build_transformer_encoder(
                seq_len=16, d_model=64, num_heads=4, d_ff=128, max_parallel=16
            ),
            16,
        ),
    ]


class TestIngestGolden:
    @pytest.mark.parametrize("topo,size,pes", FAMILIES)
    def test_arrays_match_legacy_freeze(self, topo, size, pes):
        doc = graph_to_dict(random_canonical_graph(topo, size, seed=1))
        legacy = freeze(graph_from_dict(doc))
        ig = ingest_graph_doc(doc)
        assert ig.names == legacy.names
        assert ig.index == legacy.index
        assert ig.kinds == legacy.kinds
        assert ig.in_vol == legacy.in_vol
        assert ig.out_vol == legacy.out_vol
        assert ig.comp == legacy.comp
        assert ig.work == legacy.work
        assert ig.labels == legacy.labels
        assert ig.succ_ptr == legacy.succ_ptr
        assert ig.succ_adj == legacy.succ_adj
        assert ig.pred_ptr == legacy.pred_ptr
        assert ig.pred_adj == legacy.pred_adj
        assert ig.topo == legacy.topo
        assert ig.entries == legacy.entries
        assert ig.exits == legacy.exits
        assert ig.num_tasks == legacy.num_tasks

    @pytest.mark.parametrize("topo,size,pes", FAMILIES)
    def test_fingerprint_matches_without_networkx(self, topo, size, pes):
        doc = graph_to_dict(random_canonical_graph(topo, size, seed=2))
        ig = ingest_graph_doc(doc)
        assert graph_fingerprint(ig) == graph_fingerprint(graph_from_dict(doc))
        # the streaming fingerprint never touched networkx
        assert ig._graph is None

    @pytest.mark.parametrize("topo,size,pes", FAMILIES)
    @pytest.mark.parametrize("variant", ["lts", "rlx", "work"])
    def test_schedules_byte_identical(self, topo, size, pes, variant):
        doc = graph_to_dict(random_canonical_graph(topo, size, seed=0))
        ig = ingest_graph_doc(doc)
        a = json.dumps(schedule_to_dict(schedule_streaming(ig, pes, variant)))
        b = json.dumps(
            schedule_to_dict(schedule_streaming(graph_from_dict(doc), pes, variant))
        )
        assert a == b
        assert ig._graph is None  # scheduling ran on the arrays alone

    def test_ml_builders_roundtrip(self):
        for graph, pes in _ml_graphs():
            doc = graph_to_dict(graph)
            ig = ingest_graph_doc(doc)
            assert graph_fingerprint(ig) == graph_fingerprint(graph)
            a = json.dumps(schedule_to_dict(schedule_streaming(ig, pes, "lts")))
            b = json.dumps(schedule_to_dict(schedule_streaming(graph, pes, "lts")))
            assert a == b

    def test_trusted_ingest_same_arrays(self):
        doc = graph_to_dict(random_canonical_graph("fft", 16, seed=3))
        a, b = ingest_graph_doc(doc), ingest_graph_doc(doc, validate=False)
        assert a.names == b.names and a.succ_adj == b.succ_adj
        assert a.topo == b.topo and a.work == b.work

    def test_tuple_names_survive(self):
        # the paper topologies name nodes with tuples; the wire tags them
        doc = graph_to_dict(random_canonical_graph("cholesky", 6, seed=0))
        ig = ingest_graph_doc(doc)
        assert any(isinstance(n, tuple) for n in ig.names)
        assert graph_to_dict(ig.graph) == doc

    def test_materialized_graph_adopts_the_view(self):
        doc = graph_to_dict(random_canonical_graph("gaussian", 8, seed=1))
        ig = ingest_graph_doc(doc)
        g = ig.graph  # lazy materialization
        assert isinstance(g, CanonicalGraph)
        assert freeze(g) is ig
        assert graph_to_dict(g) == doc
        g.validate()  # the twin is a fully valid canonical graph

    def test_nonstreaming_and_heft_run_on_ingested_graphs(self):
        from repro.baselines import schedule_heft, schedule_nonstreaming

        doc = graph_to_dict(random_canonical_graph("layered", 96, seed=4))
        ig = ingest_graph_doc(doc)
        legacy = graph_from_dict(doc)
        a = schedule_nonstreaming(ig, 16)
        b = schedule_nonstreaming(legacy, 16)
        assert json.dumps(schedule_to_dict(a)) == json.dumps(schedule_to_dict(b))
        assert schedule_heft(ig, [1.0] * 16).makespan == \
            schedule_heft(legacy, [1.0] * 16).makespan
        assert ig._graph is None  # neither baseline materialized networkx


class TestScheduleDocBytes:
    @pytest.mark.parametrize("topo,size,pes", FAMILIES[:4])
    @pytest.mark.parametrize("variant", ["lts", "rlx"])
    def test_streaming_bytes_match_json_dumps(self, topo, size, pes, variant):
        ig = ingest_graph_doc(
            graph_to_dict(random_canonical_graph(topo, size, seed=5))
        )
        s = schedule_streaming(ig, pes, variant)
        assert schedule_doc_bytes(s) == json.dumps(schedule_to_dict(s)).encode()

    def test_list_schedule_bytes_match(self):
        from repro.baselines import schedule_nonstreaming

        g = random_canonical_graph("fft", 16, seed=1)
        s = schedule_nonstreaming(g, 8)
        assert schedule_doc_bytes(s) == json.dumps(schedule_to_dict(s)).encode()

    def test_out_buffer_is_appended(self):
        g = random_canonical_graph("chain", 6, seed=0)
        s = schedule_streaming(g, 4, "lts")
        buf = bytearray(b"prefix:")
        blob = schedule_doc_bytes(s, out=buf)
        assert bytes(buf) == b"prefix:" + blob


class TestValidationParity:
    """Same exception type and message as ``graph_from_dict``."""

    def _both(self, doc):
        errors = []
        for parse in (graph_from_dict, ingest_graph_doc):
            try:
                parse(json.loads(json.dumps(doc)))
                errors.append(None)
            except Exception as exc:
                errors.append((type(exc), str(exc)))
        assert errors[0] is not None, "expected the legacy parser to raise"
        assert errors[0] == errors[1]
        return errors[0]

    def _doc(self, **overrides):
        g = CanonicalGraph()
        g.add_source("s", 4)
        g.add_task("t", 4, 4)
        g.add_sink("k", 4)
        g.add_edge("s", "t")
        g.add_edge("t", "k")
        doc = graph_to_dict(g)
        doc.update(overrides)
        return doc

    def test_wrong_format(self):
        exc_type, msg = self._both({"format": "nope"})
        assert exc_type is ValueError and "not a canonical task graph" in msg

    def test_wrong_version(self):
        exc_type, msg = self._both(self._doc(version=99))
        assert exc_type is ValueError and "unsupported version" in msg

    def test_bad_kind(self):
        doc = self._doc()
        doc["nodes"][1]["kind"] = "quantum"
        exc_type, msg = self._both(doc)
        assert exc_type is ValueError and "quantum" in msg

    def test_duplicate_node(self):
        doc = self._doc()
        doc["nodes"].append(dict(doc["nodes"][1]))
        exc_type, msg = self._both(doc)
        assert exc_type is CanonicalityError and "duplicate node" in msg

    def test_bad_volumes_for_kind(self):
        doc = self._doc()
        doc["nodes"][0]["input_volume"] = 3  # a source must have I == 0
        exc_type, msg = self._both(doc)
        assert exc_type is ValueError and "must have I(v) == 0" in msg

    def test_kind_rate_mismatch(self):
        doc = self._doc()
        doc["nodes"][1]["kind"] = "downsampler"  # volumes say elementwise
        exc_type, msg = self._both(doc)
        assert exc_type is ValueError and "imply" in msg

    def test_unknown_edge_endpoint(self):
        doc = self._doc()
        doc["edges"].append(["t", "ghost"])
        exc_type, msg = self._both(doc)
        assert exc_type is KeyError and "ghost" in msg

    def test_sink_with_outgoing_edge(self):
        doc = self._doc()
        doc["edges"].append(["k", "t"])
        exc_type, msg = self._both(doc)
        assert exc_type is CanonicalityError and "cannot have outgoing" in msg

    def test_source_with_incoming_edge(self):
        doc = self._doc()
        doc["edges"].append(["t", "s"])
        exc_type, msg = self._both(doc)
        assert exc_type is CanonicalityError and "cannot have incoming" in msg

    def test_volume_mismatch_on_edge(self):
        doc = self._doc()
        doc["nodes"][1]["input_volume"] = 2
        doc["nodes"][1]["output_volume"] = 2
        exc_type, msg = self._both(doc)
        assert exc_type is CanonicalityError and "volume" in msg

    def test_cycle_detected(self):
        g = CanonicalGraph()
        g.add_task("a", 4, 4)
        g.add_task("b", 4, 4)
        g.add_edge("a", "b")
        doc = graph_to_dict(g)
        doc["edges"].append(["b", "a"])
        exc_type, msg = self._both(doc)
        assert exc_type is CanonicalityError and "acyclic" in msg

    def test_duplicate_edges_are_idempotent(self):
        doc = self._doc()
        doc["edges"].append(list(doc["edges"][0]))  # nx dedupes silently
        legacy = freeze(graph_from_dict(json.loads(json.dumps(doc))))
        ig = ingest_graph_doc(json.loads(json.dumps(doc)))
        assert ig.succ_adj == legacy.succ_adj
        assert ig.pred_adj == legacy.pred_adj


def _strip_timing(response: dict) -> str:
    doc = {
        k: v for k, v in response.items() if k not in ("elapsed_ms", "candidates")
    }
    doc["candidate_names"] = [c["name"] for c in response.get("candidates", [])]
    doc["candidate_makespans"] = [
        c["makespan"] for c in response.get("candidates", [])
    ]
    return json.dumps(doc, sort_keys=True)


class TestServiceEquivalence:
    """Ingest-path service vs legacy networkx-path service."""

    @pytest.mark.parametrize("topo,size,pes", [
        ("layered", 128, 64),
        ("serpar", 120, 32),
        ("fft", 32, 16),
        ("gaussian", 16, 32),
        ("cholesky", 8, 16),
        ("chain", 8, 8),
    ])
    def test_byte_identical_schedule_responses(self, topo, size, pes):
        doc = {
            "op": "schedule",
            "graph": graph_to_dict(random_canonical_graph(topo, size, seed=7)),
            "num_pes": pes,
        }
        with_ingest = ScheduleService(
            cache=ScheduleCache(None, capacity=8), use_ingest=True
        )
        legacy = ScheduleService(
            cache=ScheduleCache(None, capacity=8), use_ingest=False
        )
        a = with_ingest.handle(json.loads(json.dumps(doc)))
        b = legacy.handle(json.loads(json.dumps(doc)))
        assert a["ok"] and b["ok"]
        assert a["fingerprint"] == b["fingerprint"]
        assert a["key"] == b["key"]
        assert json.dumps(a["schedule"], sort_keys=True) == \
            json.dumps(b["schedule"], sort_keys=True)
        assert _strip_timing(a) == _strip_timing(b)

    def test_ml_responses_match(self):
        for graph, pes in _ml_graphs():
            doc = {"op": "schedule", "graph": graph_to_dict(graph),
                   "num_pes": pes}
            a = ScheduleService(use_ingest=True).handle(
                json.loads(json.dumps(doc)))
            b = ScheduleService(use_ingest=False).handle(
                json.loads(json.dumps(doc)))
            assert a["ok"] and b["ok"]
            assert json.dumps(a["schedule"], sort_keys=True) == \
                json.dumps(b["schedule"], sort_keys=True)

    def test_relabeled_hit_remaps_on_ingest_path(self):
        from tests.test_service import relabel

        g = random_canonical_graph("fft", 8, seed=1)
        service = ScheduleService(cache=ScheduleCache(None, capacity=8))
        service.handle({"op": "schedule", "graph": graph_to_dict(g),
                        "num_pes": 8})
        renamed = relabel(g)
        response = service.handle({
            "op": "schedule", "graph": graph_to_dict(renamed), "num_pes": 8,
        })
        assert response["cached"] == "lru" and service.remapped == 1
        names = {t["name"] for t in response["schedule"]["tasks"]}
        assert names and names <= set(renamed.nodes)


class TestWireFastPath:
    """The line/prefix memos must be pure memoization of the slow path."""

    def _line(self, seed=0, **extra):
        g = random_canonical_graph("fft", 8, seed=seed)
        doc = {"op": "schedule", "graph": graph_to_dict(g), "num_pes": 8}
        doc.update(extra)
        return json.dumps(doc).encode()

    def test_fast_path_bytes_match_slow_path(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=8))
        line = self._line()
        assert service.serve_line_fast(line) is None  # nothing memoized yet
        cold, _ = service.serve_line_slow(line)
        fast = service.serve_line_fast(line)
        assert fast is not None
        slow, _ = service.serve_line_slow(line)

        def normalize(data: bytes) -> str:
            doc = json.loads(data)
            doc.pop("elapsed_ms")
            return json.dumps(doc, sort_keys=True)

        cold_doc = json.loads(cold)
        assert cold_doc["cached"] is False
        assert normalize(fast) == normalize(slow)
        assert json.loads(fast)["cached"] == "lru"
        assert service.fastpath == 1

    def test_no_cache_lines_never_take_the_fast_path(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=8))
        line = self._line(no_cache=True)
        service.serve_line_slow(line)
        assert service.serve_line_fast(line) is None
        service.serve_line_slow(line)
        assert service.computed == 2  # every replay recomputes

    def test_memo_budget_bounds_memory(self):
        service = ScheduleService(
            cache=ScheduleCache(None, capacity=64), wire_memo_bytes=1,
        )
        for seed in range(3):
            service.serve_line_slow(self._line(seed=seed))
        # over-budget inserts clear the memos instead of growing them
        assert len(service._line_memo) <= 1
        assert len(service._prefix_memo) <= 1

    def test_pipelined_requests_answered_in_order(self):
        service = ScheduleService(cache=ScheduleCache(None, capacity=8))
        with ScheduleServer(service, port=0, workers=2) as server:
            import socket as socketlib

            with socketlib.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                # one cold compute then two pings, written back-to-back:
                # responses must come back in request order
                batch = self._line() + b'\n{"op": "ping"}\n{"op": "stats"}\n'
                sock.sendall(batch)
                stream = sock.makefile("rb")
                first = json.loads(stream.readline())
                second = json.loads(stream.readline())
                third = json.loads(stream.readline())
        assert first["op"] == "schedule" and first["ok"]
        assert second["op"] == "ping"
        # processing may interleave (stats can run while the schedule
        # computes) but the responses must come back in request order
        assert third["op"] == "stats" and third["ok"]

    def test_idle_connections_cost_no_threads(self):
        import threading

        service = ScheduleService()
        with ScheduleServer(service, port=0, workers=1) as server:
            before = threading.active_count()
            clients = [
                ServiceClient(port=server.port, timeout=5.0) for _ in range(20)
            ]
            try:
                assert clients[-1].ping()["ok"]
                # 20 idle connections: at most the loop thread plus a
                # transiently live worker — not thread-per-connection
                assert threading.active_count() <= before + 2
            finally:
                for c in clients:
                    c.close()
